//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{lex, Tok, Token};
use crate::error::{Error, Result};
use crate::types::{parse_date, DataType, Value};

/// Parse a batch of `;`-separated statements.
pub fn parse_statements(src: &str) -> Result<Vec<Stmt>> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_tok(&Tok::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() && !p.check_tok(&Tok::Semi) {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_one(src: &str) -> Result<Stmt> {
    let mut stmts = parse_statements(src)?;
    match (stmts.len(), stmts.pop()) {
        (1, Some(stmt)) => Ok(stmt),
        (n, _) => Err(Error::Syntax(format!("expected one statement, got {n}"))),
    }
}

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "WHERE", "GROUP", "ORDER", "HAVING", "ON", "LEFT", "RIGHT", "INNER", "OUTER", "JOIN", "FROM",
    "SELECT", "UNION", "AND", "OR", "NOT", "AS", "SET", "VALUES", "INTO", "TOP", "DISTINCT",
    "LIMIT", "CROSS", "BY", "WHEN", "THEN", "ELSE", "END", "CASE", "ASC", "DESC", "EXISTS",
    "BETWEEN", "LIKE", "IN", "IS", "NULL",
];

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> Error {
        Error::Syntax(format!(
            "{msg} near byte {} (found {:?})",
            self.toks[self.pos].start,
            self.peek()
        ))
    }

    /// Case-insensitive keyword check.
    fn check_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn check_tok(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat_tok(&mut self, t: &Tok) -> bool {
        if self.check_tok(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // -- statements -----------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Stmt> {
        if self.check_kw("SELECT") {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            return self.parse_delete();
        }
        if self.check_kw("CREATE") {
            return self.parse_create();
        }
        if self.eat_kw("DROP") {
            return self.parse_drop();
        }
        if self.eat_kw("EXEC") || self.eat_kw("EXECUTE") {
            return self.parse_exec();
        }
        if self.eat_kw("BEGIN") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            return Ok(Stmt::Rollback);
        }
        if self.eat_kw("SHUTDOWN") {
            let mut nowait = false;
            if self.eat_kw("WITH") {
                self.expect_kw("NOWAIT")?;
                nowait = true;
            }
            return Ok(Stmt::Shutdown { nowait });
        }
        if self.eat_kw("CHECKPOINT") {
            return Ok(Stmt::Checkpoint);
        }
        Err(self.err("expected statement"))
    }

    fn table_name(&mut self) -> Result<TableName> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(TableName {
                    name: s,
                    temp: false,
                })
            }
            Tok::TempIdent(s) => {
                self.advance();
                Ok(TableName {
                    name: s,
                    temp: true,
                })
            }
            _ => Err(self.err("expected table name")),
        }
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.table_name()?;
        let mut columns = None;
        if self.check_tok(&Tok::LParen) {
            // Could be a column list or directly VALUES — column list only.
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen, ")")?;
            columns = Some(cols);
        }
        if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_tok(&Tok::LParen, "(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen, ")")?;
                rows.push(row);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            Ok(Stmt::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            })
        } else if self.check_kw("SELECT") {
            let q = self.parse_select()?;
            Ok(Stmt::Insert {
                table,
                columns,
                source: InsertSource::Select(Box::new(q)),
            })
        } else {
            Err(self.err("expected VALUES or SELECT"))
        }
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        let table = self.table_name()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Tok::Eq, "=")?;
            sets.push((col, self.parse_expr()?));
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.table_name()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, filter })
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        self.expect_kw("CREATE")?;
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.eat_kw("TABLE") {
            if or_replace {
                return Err(self.err("OR REPLACE is only supported for procedures"));
            }
            return self.parse_create_table();
        }
        if self.eat_kw("PROCEDURE") || self.eat_kw("PROC") {
            return self.parse_create_proc(or_replace);
        }
        Err(self.err("expected TABLE or PROCEDURE"))
    }

    fn parse_create_table(&mut self) -> Result<Stmt> {
        let table = self.table_name()?;
        self.expect_tok(&Tok::LParen, "(")?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_tok(&Tok::LParen, "(")?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen, ")")?;
            } else {
                let name = self.ident()?;
                let dtype = self.parse_type()?;
                let mut not_null = false;
                let mut pk = false;
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    } else if self.eat_kw("NULL") {
                        // explicit nullable, default
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        pk = true;
                        not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name,
                    dtype,
                    not_null,
                    primary_key: pk,
                });
            }
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        self.expect_tok(&Tok::RParen, ")")?;
        Ok(Stmt::CreateTable {
            table,
            columns,
            primary_key,
        })
    }

    fn parse_type(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        let dt = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" | "MONEY" => DataType::Float,
            "VARCHAR" | "CHAR" | "NVARCHAR" | "NCHAR" | "TEXT" | "STRING" => DataType::Str,
            "DATE" | "DATETIME" | "TIMESTAMP" => DataType::Date,
            other => return Err(Error::Syntax(format!("unknown type {other}"))),
        };
        // Optional length/precision arguments: VARCHAR(25), DECIMAL(15,2).
        if self.eat_tok(&Tok::LParen) {
            loop {
                match self.advance() {
                    Tok::Int(_) => {}
                    _ => return Err(self.err("expected length in type")),
                }
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen, ")")?;
        }
        if name == "DOUBLE" {
            let _ = self.eat_kw("PRECISION");
        }
        Ok(dt)
    }

    fn parse_create_proc(&mut self, or_replace: bool) -> Result<Stmt> {
        let name = self.ident()?;
        let mut params = Vec::new();
        let parenthesised = self.eat_tok(&Tok::LParen);
        if parenthesised || matches!(self.peek(), Tok::Param(_)) {
            if !self.check_tok(&Tok::RParen) {
                loop {
                    match self.advance() {
                        Tok::Param(p) => {
                            let dt = self.parse_type()?;
                            params.push((p, dt));
                        }
                        _ => return Err(self.err("expected @param")),
                    }
                    if !self.eat_tok(&Tok::Comma) {
                        break;
                    }
                }
            }
            if parenthesised {
                self.expect_tok(&Tok::RParen, ")")?;
            }
        }
        self.expect_kw("AS")?;
        // Body: the rest of the source text. Validate it parses, but store
        // raw text so parameters bind at EXEC time.
        let body_start = self.toks[self.pos].start;
        let body = self.src[body_start..].trim().to_string();
        if body.is_empty() {
            return Err(self.err("empty procedure body"));
        }
        // Consume the remaining tokens.
        self.pos = self.toks.len() - 1;
        // Validation parse (parameters appear as Expr::Param).
        parse_statements(&body)?;
        Ok(Stmt::CreateProc {
            name,
            params,
            body,
            or_replace,
        })
    }

    fn parse_drop(&mut self) -> Result<Stmt> {
        if self.eat_kw("TABLE") {
            let mut if_exists = false;
            if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                if_exists = true;
            }
            let table = self.table_name()?;
            return Ok(Stmt::DropTable { table, if_exists });
        }
        if self.eat_kw("PROCEDURE") || self.eat_kw("PROC") {
            let name = self.ident()?;
            return Ok(Stmt::DropProc { name });
        }
        Err(self.err("expected TABLE or PROCEDURE"))
    }

    fn parse_exec(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        let mut args = Vec::new();
        if !self.at_eof() && !self.check_tok(&Tok::Semi) {
            loop {
                // Allow `@name =` prefixes (ignored: positional binding).
                if matches!(self.peek(), Tok::Param(_)) && self.peek2() == &Tok::Eq {
                    self.advance();
                    self.advance();
                }
                args.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(Stmt::Exec { name, args })
    }

    // -- SELECT ----------------------------------------------------------------

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let _ = self.eat_kw("ALL");
        let mut top = None;
        if self.eat_kw("TOP") {
            match self.advance() {
                Tok::Int(n) if n >= 0 => top = Some(n as u64),
                _ => return Err(self.err("expected integer after TOP")),
            }
        }
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        // LIMIT n as a synonym for TOP n (applied after ORDER BY).
        if self.eat_kw("LIMIT") {
            match self.advance() {
                Tok::Int(n) if n >= 0 => top = Some(top.unwrap_or(u64::MAX).min(n as u64)),
                _ => return Err(self.err("expected integer after LIMIT")),
            }
        }
        Ok(SelectStmt {
            distinct,
            top,
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_tok(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let (Tok::Ident(name), Tok::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::Star) {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(s) = self.peek().clone() {
            if RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) {
                None
            } else {
                self.advance();
                Some(s)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let outer = if self.check_kw("LEFT") {
                self.advance();
                let _ = self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                true
            } else if self.check_kw("INNER") {
                self.advance();
                self.expect_kw("JOIN")?;
                false
            } else if self.check_kw("JOIN") {
                self.advance();
                false
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                outer,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat_tok(&Tok::LParen) {
            let q = self.parse_select()?;
            self.expect_tok(&Tok::RParen, ")")?;
            let _ = self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
            });
        }
        let table = self.table_name()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(s) = self.peek().clone() {
            if RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) {
                None
            } else {
                self.advance();
                Some(s)
            }
        } else {
            None
        };
        Ok(TableRef::Table { table, alias })
    }

    // -- expressions -----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.check_kw("NOT")
            && !matches!(self.peek2(), Tok::Ident(s) if s.eq_ignore_ascii_case("EXISTS"))
        {
            self.advance();
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] LIKE/IN/BETWEEN.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let pat = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pat),
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_tok(&Tok::LParen, "(")?;
            if self.check_kw("SELECT") {
                let q = self.parse_select()?;
                self.expect_tok(&Tok::RParen, ")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen, ")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.err("expected LIKE, BETWEEN or IN after NOT"));
        }
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Neq => BinOp::Neq,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_tok(&Tok::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_tok(&Tok::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        // EXISTS / NOT EXISTS
        if self.check_kw("NOT")
            && matches!(self.peek2(), Tok::Ident(s) if s.eq_ignore_ascii_case("EXISTS"))
        {
            self.advance();
            self.advance();
            self.expect_tok(&Tok::LParen, "(")?;
            let q = self.parse_select()?;
            self.expect_tok(&Tok::RParen, ")")?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: true,
            });
        }
        if self.check_kw("EXISTS") {
            self.advance();
            self.expect_tok(&Tok::LParen, "(")?;
            let q = self.parse_select()?;
            self.expect_tok(&Tok::RParen, ")")?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: false,
            });
        }
        if self.check_kw("CASE") {
            return self.parse_case();
        }
        if self.check_kw("NULL") {
            self.advance();
            return Ok(Expr::Literal(Value::Null));
        }
        // DATE 'yyyy-mm-dd'
        if self.check_kw("DATE") {
            if let Tok::Str(s) = self.peek2().clone() {
                self.advance();
                self.advance();
                return Ok(Expr::Literal(Value::Date(parse_date(&s)?)));
            }
        }
        match self.peek().clone() {
            Tok::Int(n) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(n)))
            }
            Tok::Float(f) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(f)))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::Param(p) => {
                self.advance();
                Ok(Expr::Param(p))
            }
            Tok::LParen => {
                self.advance();
                if self.check_kw("SELECT") {
                    let q = self.parse_select()?;
                    self.expect_tok(&Tok::RParen, ")")?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_tok(&Tok::RParen, ")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.advance();
                // Function call?
                if self.check_tok(&Tok::LParen) {
                    self.advance();
                    if self.eat_tok(&Tok::Star) {
                        self.expect_tok(&Tok::RParen, ")")?;
                        return Ok(Expr::Func {
                            name,
                            args: Vec::new(),
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if !self.check_tok(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_tok(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_tok(&Tok::RParen, ")")?;
                    return Ok(Expr::Func {
                        name,
                        args,
                        distinct,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_tok(&Tok::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw("CASE")?;
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_one("SELECT a, b AS x FROM t WHERE a > 3 ORDER BY b DESC").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert!(q.filter.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
    }

    #[test]
    fn top_and_distinct() {
        let Stmt::Select(q) = parse_one("SELECT DISTINCT TOP 10 * FROM lineitem").unwrap() else {
            panic!()
        };
        assert!(q.distinct);
        assert_eq!(q.top, Some(10));
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn where_0_eq_1_metadata_probe() {
        // The Phoenix metadata trick must parse.
        let s = parse_one("SELECT l_orderkey, l_quantity FROM lineitem WHERE 0=1").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(matches!(q.filter, Some(Expr::Binary { op: BinOp::Eq, .. })));
    }

    #[test]
    fn joins_and_derived_tables() {
        let s = parse_one(
            "SELECT c_custkey, o_total FROM customer LEFT OUTER JOIN orders \
             ON c_custkey = o_custkey, (SELECT 1 AS one) d WHERE one = 1",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert_eq!(q.from.len(), 2);
        assert!(matches!(q.from[0], TableRef::Join { outer: true, .. }));
        assert!(matches!(q.from[1], TableRef::Derived { .. }));
    }

    #[test]
    fn group_having_scalar_subquery() {
        let s = parse_one(
            "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
             FROM partsupp GROUP BY ps_partkey \
             HAVING SUM(ps_supplycost * ps_availqty) > \
             (SELECT SUM(ps_supplycost) * 0.0001 FROM partsupp) \
             ORDER BY value DESC",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.as_ref().unwrap().contains_aggregate());
    }

    #[test]
    fn exists_and_not_exists() {
        let s = parse_one(
            "SELECT 1 FROM orders WHERE EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey) \
             AND NOT EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = -1)",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        let mut exists = 0;
        q.filter.as_ref().unwrap().walk(&mut |e| {
            if matches!(e, Expr::Exists { .. }) {
                exists += 1;
            }
        });
        assert_eq!(exists, 2);
    }

    #[test]
    fn in_list_and_subquery_and_between() {
        parse_one("SELECT 1 FROM t WHERE a IN (1,2,3) AND b NOT IN (SELECT x FROM u) AND c BETWEEN 1 AND 5").unwrap();
        parse_one("SELECT 1 FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT LIKE 'x%'").unwrap();
    }

    #[test]
    fn case_when() {
        let s = parse_one(
            "SELECT SUM(CASE WHEN n_name = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume) FROM t",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(matches!(q.items[0], SelectItem::Expr { .. }));
    }

    #[test]
    fn insert_forms() {
        let s = parse_one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        assert!(matches!(
            s,
            Stmt::Insert {
                source: InsertSource::Values(ref v),
                ..
            } if v.len() == 2
        ));
        let s = parse_one("INSERT INTO dest SELECT * FROM src WHERE a > 0").unwrap();
        assert!(matches!(
            s,
            Stmt::Insert {
                source: InsertSource::Select(_),
                ..
            }
        ));
    }

    #[test]
    fn update_delete() {
        parse_one("UPDATE stock SET s_quantity = s_quantity - 5 WHERE s_i_id = 3").unwrap();
        parse_one("DELETE FROM new_order WHERE no_o_id = 1").unwrap();
    }

    #[test]
    fn create_table_with_pk() {
        let s = parse_one(
            "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10) NOT NULL, w_ytd DECIMAL(12,2))",
        )
        .unwrap();
        let Stmt::CreateTable { columns, .. } = s else {
            panic!()
        };
        assert!(columns[0].primary_key);
        assert!(columns[1].not_null);
        assert_eq!(columns[2].dtype, DataType::Float);

        let s2 = parse_one(
            "CREATE TABLE order_line (ol_o_id INT, ol_number INT, PRIMARY KEY (ol_o_id, ol_number))",
        )
        .unwrap();
        let Stmt::CreateTable { primary_key, .. } = s2 else {
            panic!()
        };
        assert_eq!(primary_key, vec!["ol_o_id", "ol_number"]);
    }

    #[test]
    fn temp_tables() {
        let s = parse_one("CREATE TABLE #session_probe (x INT)").unwrap();
        assert!(matches!(s, Stmt::CreateTable { table, .. } if table.temp));
        let s = parse_one("SELECT * FROM #session_probe").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(
            matches!(&q.from[0], TableRef::Table { table, .. } if table.temp && table.name == "session_probe")
        );
    }

    #[test]
    fn create_procedure_captures_body() {
        let s = parse_one(
            "CREATE PROCEDURE load_result (@lo INT, @hi INT) AS INSERT INTO res SELECT * FROM src WHERE k BETWEEN @lo AND @hi",
        )
        .unwrap();
        let Stmt::CreateProc {
            name, params, body, ..
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "load_result");
        assert_eq!(params.len(), 2);
        assert!(body.starts_with("INSERT INTO res"));
    }

    #[test]
    fn exec_with_args() {
        let s = parse_one("EXEC load_result 1, 100").unwrap();
        assert!(matches!(s, Stmt::Exec { ref args, .. } if args.len() == 2));
        let s = parse_one("EXECUTE p @a = 5, @b = 'x'").unwrap();
        assert!(matches!(s, Stmt::Exec { ref args, .. } if args.len() == 2));
    }

    #[test]
    fn txn_control_and_shutdown() {
        assert_eq!(parse_one("BEGIN TRAN").unwrap(), Stmt::Begin);
        assert_eq!(parse_one("COMMIT").unwrap(), Stmt::Commit);
        assert_eq!(parse_one("ROLLBACK TRANSACTION").unwrap(), Stmt::Rollback);
        assert_eq!(
            parse_one("SHUTDOWN WITH NOWAIT").unwrap(),
            Stmt::Shutdown { nowait: true }
        );
        assert_eq!(
            parse_one("SHUTDOWN").unwrap(),
            Stmt::Shutdown { nowait: false }
        );
        assert_eq!(parse_one("CHECKPOINT").unwrap(), Stmt::Checkpoint);
    }

    #[test]
    fn batches() {
        let v = parse_statements("SELECT 1; SELECT 2;; SELECT 3").unwrap();
        assert_eq!(v.len(), 3);
        assert!(parse_statements("SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn date_literals() {
        let s = parse_one("SELECT 1 FROM t WHERE d >= DATE '1994-01-01'").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        let mut found = false;
        q.filter.unwrap().walk(&mut |e| {
            if matches!(e, Expr::Literal(Value::Date(_))) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn operator_precedence() {
        let Stmt::Select(q) = parse_one("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2*3).
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("got {expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn substring_and_year_functions() {
        parse_one("SELECT SUBSTRING(c_phone, 1, 2), YEAR(o_orderdate) FROM t").unwrap();
        parse_one("SELECT COUNT(DISTINCT ps_suppkey), COUNT(*) FROM partsupp").unwrap();
    }
}
