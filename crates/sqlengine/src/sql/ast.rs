//! Abstract syntax tree for the engine's SQL dialect.
//!
//! Variant and field names mirror the SQL grammar directly; per-field doc
//! comments would repeat the names, so lints for them are allowed off.
#![allow(missing_docs)]

use crate::types::{DataType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    Insert {
        table: TableName,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: TableName,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: TableName,
        filter: Option<Expr>,
    },
    CreateTable {
        table: TableName,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
    },
    DropTable {
        table: TableName,
        if_exists: bool,
    },
    CreateProc {
        name: String,
        params: Vec<(String, DataType)>,
        /// Raw body text, stored verbatim in the catalog and re-parsed at
        /// EXEC time with parameters bound.
        body: String,
        or_replace: bool,
    },
    DropProc {
        name: String,
    },
    Exec {
        name: String,
        args: Vec<Expr>,
    },
    Begin,
    Commit,
    Rollback,
    /// `SHUTDOWN [WITH NOWAIT]` — crash the server, losing volatile state.
    Shutdown {
        nowait: bool,
    },
    Checkpoint,
}

/// Table reference by name; `temp` marks `#name` session-local tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableName {
    pub name: String,
    pub temp: bool,
}

impl TableName {
    pub fn normal(name: impl Into<String>) -> Self {
        TableName {
            name: name.into(),
            temp: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub not_null: bool,
    pub primary_key: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub top: Option<u64>,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        table: TableName,
        alias: Option<String>,
    },
    /// Derived table: `(SELECT ...) AS alias`.
    Derived {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// `left LEFT [OUTER] JOIN right ON cond` (also INNER JOIN).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: Expr,
        outer: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column {
        table: Option<String>,
        name: String,
    },
    /// `@name` — bound at EXEC time.
    Param(String),
    Neg(Box<Expr>),
    Not(Box<Expr>),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    ScalarSubquery(Box<SelectStmt>),
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Function call: scalar (`YEAR`, `SUBSTRING`, ...) or aggregate
    /// (`SUM`, `COUNT`, `AVG`, `MIN`, `MAX`); `COUNT(*)` has empty args
    /// and `star = true`.
    Func {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
}

impl Expr {
    /// Walk the expression tree (pre-order), not descending into subqueries.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Neg(e) | Expr::Not(e) => e.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// True if the expression contains an aggregate function call
    /// (not descending into subqueries).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Func { name, .. } = e {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Aggregate function names recognised by the planner.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "SUM" | "COUNT" | "AVG" | "MIN" | "MAX"
    )
}
