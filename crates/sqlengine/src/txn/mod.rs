//! Transaction handles and the transaction manager.
//!
//! A [`TxnHandle`] carries the in-memory undo list (so runtime aborts do
//! not scan the log) and the set of table locks held. Commit and abort
//! logic lives in [`crate::storage::Storage`], which owns the pages and
//! indexes the undo actions touch.

pub mod locks;

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::wal::log::{ClrAction, Lsn, TxnId};

use self::locks::LockTarget;

/// One undoable page action performed by a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntry {
    /// LSN of the record being compensated.
    pub lsn: Lsn,
    /// The *undo* action (inverse of what was done).
    pub action: ClrAction,
    /// Affected table.
    pub table: u32,
    /// Affected page.
    pub page: u32,
    /// Affected slot.
    pub slot: u16,
}

/// A live transaction.
pub struct TxnHandle {
    /// Transaction id (doubles as wait-die age).
    pub id: TxnId,
    undo: Mutex<Vec<UndoEntry>>,
    locks: Mutex<HashSet<LockTarget>>,
}

impl TxnHandle {
    /// Record an undoable action.
    pub fn push_undo(&self, e: UndoEntry) {
        self.undo.lock().push(e);
    }

    /// Drain the undo list in reverse (apply order for abort).
    pub fn take_undo_reversed(&self) -> Vec<UndoEntry> {
        let mut v = std::mem::take(&mut *self.undo.lock());
        v.reverse();
        v
    }

    /// Remember a lock for release at commit/abort.
    pub fn note_lock(&self, target: LockTarget) {
        self.locks.lock().insert(target);
    }

    /// Drain the remembered lock set.
    pub fn take_locks(&self) -> Vec<LockTarget> {
        self.locks.lock().drain().collect()
    }

    /// Number of buffered undo actions (tests/metrics).
    pub fn undo_len(&self) -> usize {
        self.undo.lock().len()
    }
}

/// Issues transaction ids.
pub struct TxnManager {
    next: AtomicU64,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
        }
    }
}

impl TxnManager {
    /// Start numbering above ids seen in the recovered log so wait-die
    /// ages stay monotonic across restarts.
    pub fn starting_at(next: TxnId) -> Self {
        TxnManager {
            next: AtomicU64::new(next.max(1)),
        }
    }

    /// Issue a fresh transaction handle.
    pub fn begin(&self) -> TxnHandle {
        TxnHandle {
            id: self.next.fetch_add(1, Ordering::Relaxed),
            undo: Mutex::new(Vec::new()),
            locks: Mutex::new(HashSet::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_monotonic() {
        let m = TxnManager::default();
        let a = m.begin().id;
        let b = m.begin().id;
        assert!(b > a);
    }

    #[test]
    fn starting_at_respects_floor() {
        let m = TxnManager::starting_at(100);
        assert_eq!(m.begin().id, 100);
        let m0 = TxnManager::starting_at(0);
        assert_eq!(m0.begin().id, 1);
    }

    #[test]
    fn undo_drained_in_reverse() {
        let m = TxnManager::default();
        let t = m.begin();
        for i in 0..3 {
            t.push_undo(UndoEntry {
                lsn: i,
                action: ClrAction::Tombstone,
                table: 1,
                page: 1,
                slot: i as u16,
            });
        }
        let drained = t.take_undo_reversed();
        assert_eq!(
            drained.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
        assert_eq!(t.undo_len(), 0);
    }

    #[test]
    fn lock_set_tracked() {
        let m = TxnManager::default();
        let t = m.begin();
        t.note_lock(LockTarget::table(3));
        t.note_lock(LockTarget::table(3));
        t.note_lock(LockTarget::row(5, 9));
        let mut locks = t.take_locks();
        locks.sort();
        assert_eq!(locks, vec![LockTarget::table(3), LockTarget::row(5, 9)]);
    }
}
