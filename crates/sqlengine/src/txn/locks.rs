//! Multi-granularity locking with wait-die deadlock handling.
//!
//! Two levels: table locks (S/X plus intention modes IS/IX) and row locks
//! (S/X on a key derived from the row's primary key). Scans take table S;
//! point reads take table IS + row S; PK-targeted DML takes table IX + row
//! X; non-targeted DML falls back to table X. Strict two-phase: all locks
//! release at commit/abort.
//!
//! Deadlocks are resolved by wait-die using the transaction id as age
//! (smaller id = older): an older requester waits, a younger one is killed
//! with [`Error::Deadlock`] and the client retries — which the paper treats
//! as a normal transaction abort the application already handles.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};
use crate::wal::log::TxnId;

/// Number of lock-table partitions. Targets hash here by (table, row),
/// so two sessions locking unrelated resources never contend on the
/// same latch.
const LOCK_SHARDS: usize = 8;

/// Requested/held lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intent to take row S locks below.
    IntentionShared,
    /// Intent to take row X locks below.
    IntentionExclusive,
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    fn bit(self) -> u8 {
        match self {
            LockMode::IntentionShared => 1,
            LockMode::IntentionExclusive => 2,
            LockMode::Shared => 4,
            LockMode::Exclusive => 8,
        }
    }

    /// Standard multi-granularity compatibility matrix.
    fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IntentionShared, IntentionShared)
                | (IntentionShared, IntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (IntentionShared, Shared)
                | (Shared, IntentionShared)
                | (Shared, Shared)
        )
    }

    fn all() -> [LockMode; 4] {
        [
            LockMode::IntentionShared,
            LockMode::IntentionExclusive,
            LockMode::Shared,
            LockMode::Exclusive,
        ]
    }
}

/// What is being locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockTarget {
    /// The owning table.
    pub table: u32,
    /// `None` = the whole table; `Some(key)` = one row (hashed PK).
    pub row: Option<u64>,
}

impl LockTarget {
    /// Whole-table target.
    pub fn table(table: u32) -> LockTarget {
        LockTarget { table, row: None }
    }

    /// Single-row target (key = hashed PK bytes).
    pub fn row(table: u32, key: u64) -> LockTarget {
        LockTarget {
            table,
            row: Some(key),
        }
    }
}

#[derive(Default)]
struct TargetLock {
    /// Bitmask of held modes per transaction.
    holders: HashMap<TxnId, u8>,
}

impl TargetLock {
    fn conflicting(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|(&h, &mask)| {
                h != txn
                    && LockMode::all()
                        .iter()
                        .any(|m| mask & m.bit() != 0 && !mode.compatible(*m))
            })
            .map(|(&h, _)| h)
            .collect()
    }
}

/// One partition of the lock table: a slice of the target space with
/// its own latch and wakeup channel.
struct LockShard {
    state: Mutex<HashMap<LockTarget, TargetLock>>,
    cv: Condvar,
}

/// The lock manager. One per engine instance (volatile). Partitioned
/// into [`LOCK_SHARDS`] independent lock tables by resource hash.
pub struct LockManager {
    shards: Vec<LockShard>,
    /// Upper bound on lock waits before declaring deadlock (safety net for
    /// waits-on-older chains that wait-die cannot break).
    wait_timeout: Duration,
    /// Grace period a *younger* requester may wait before dying. Pure
    /// wait-die (grace = 0) aborts on every brief conflict; a short grace
    /// lets most conflicts drain while the timeout still breaks any cycle
    /// (the younger party always dies eventually, so no deadlock can
    /// persist past the grace period).
    young_grace: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(Duration::from_secs(10))
    }
}

impl LockManager {
    /// Lock manager with the given worst-case wait bound.
    pub fn new(wait_timeout: Duration) -> Self {
        LockManager {
            shards: (0..LOCK_SHARDS)
                .map(|_| LockShard {
                    state: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            wait_timeout,
            young_grace: Duration::from_millis(20).min(wait_timeout / 4),
        }
    }

    /// Which partition owns `target`. Every target maps to exactly one
    /// shard, so per-target wait-die semantics are unchanged by the
    /// partitioning.
    fn shard_of(target: &LockTarget) -> usize {
        let mut h = DefaultHasher::new();
        target.hash(&mut h);
        h.finish() as usize % LOCK_SHARDS
    }

    /// Acquire `mode` on `target` for `txn`, blocking per wait-die (with
    /// a bounded grace wait for younger requesters).
    pub fn lock(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<()> {
        let start = Instant::now();
        let deadline = start + self.wait_timeout;
        let young_deadline = start + self.young_grace;
        let si = Self::shard_of(&target);
        let mut state = self.shards[si].state.lock();
        let _lw = obskit::lockcheck::held("LockShard::state");
        let mut waited = false;
        loop {
            let entry = state.entry(target).or_default();
            let conflicting = entry.conflicting(txn, mode);
            if conflicting.is_empty() {
                *entry.holders.entry(txn).or_insert(0) |= mode.bit();
                if waited {
                    // Only contended acquisitions are interesting: the
                    // uncontended fast path stays clock-free.
                    obskit::metrics::global().record("sqlengine.lock.wait", start.elapsed());
                }
                return Ok(());
            }
            let now = Instant::now();
            // Wait-die: a younger requester dies — after its grace wait.
            if conflicting.iter().any(|&h| h < txn) && now >= young_deadline {
                Self::gc_entry(&mut state, target);
                obskit::metrics::global()
                    .counter("sqlengine.lock.deadlocks")
                    .incr();
                return Err(Error::Deadlock);
            }
            if now >= deadline {
                Self::gc_entry(&mut state, target);
                obskit::metrics::global()
                    .counter("sqlengine.lock.deadlocks")
                    .incr();
                return Err(Error::Deadlock);
            }
            waited = true;
            // Condvar waits are allowed to wake spuriously (and `std`'s
            // documentation reserves the right): correctness rests on
            // this loop re-evaluating `conflicting` before every grant,
            // never on WHY the wait returned. The wait result is
            // deliberately ignored — both the grace and overall deadlines
            // are enforced against `Instant::now()` above, so a spurious
            // or early wakeup can neither grant a conflicting lock nor
            // shorten/extend the timeout. The short tick also bounds the
            // window in which a lost notification could stall a waiter.
            self.shards[si]
                .cv
                .wait_for(&mut state, Duration::from_millis(5));
        }
    }

    /// Drop a holderless entry left behind by a failed acquisition so
    /// aborted waiters don't accumulate empty rows in the lock table.
    fn gc_entry(state: &mut HashMap<LockTarget, TargetLock>, target: LockTarget) {
        if state.get(&target).is_some_and(|e| e.holders.is_empty()) {
            state.remove(&target);
        }
    }

    /// Release every lock `txn` holds on the given targets. Shard latches
    /// are taken one at a time (never two at once), so the partitioned
    /// release introduces no latch-ordering constraint.
    pub fn release_all(&self, txn: TxnId, targets: impl IntoIterator<Item = LockTarget>) {
        let mut by_shard: Vec<Vec<LockTarget>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for t in targets {
            by_shard[Self::shard_of(&t)].push(t);
        }
        for (si, ts) in by_shard.into_iter().enumerate() {
            if ts.is_empty() {
                continue;
            }
            let mut state = self.shards[si].state.lock();
            let _lw = obskit::lockcheck::held("LockShard::state");
            for t in ts {
                if let Some(l) = state.get_mut(&t) {
                    l.holders.remove(&txn);
                    if l.holders.is_empty() {
                        state.remove(&t);
                    }
                }
            }
            drop(state);
            self.shards[si].cv.notify_all();
        }
    }

    /// Current holders of a target (tests/metrics).
    pub fn holders(&self, target: LockTarget) -> Vec<(TxnId, u8)> {
        let si = Self::shard_of(&target);
        self.shards[si]
            .state
            .lock()
            .get(&target)
            .map(|l| l.holders.iter().map(|(&t, &m)| (t, m)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(400))
    }

    fn t(table: u32) -> LockTarget {
        LockTarget::table(table)
    }

    fn r(table: u32, key: u64) -> LockTarget {
        LockTarget::row(table, key)
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(1, t(10), LockMode::Shared).unwrap();
        m.lock(2, t(10), LockMode::Shared).unwrap();
        assert_eq!(m.holders(t(10)).len(), 2);
    }

    #[test]
    fn intention_locks_coexist_rows_conflict() {
        let m = mgr();
        m.lock(1, t(10), LockMode::IntentionExclusive).unwrap();
        m.lock(2, t(10), LockMode::IntentionExclusive).unwrap();
        m.lock(1, r(10, 5), LockMode::Exclusive).unwrap();
        // Different rows: fine.
        m.lock(2, r(10, 6), LockMode::Exclusive).unwrap();
        // Same row: younger dies.
        assert_eq!(
            m.lock(2, r(10, 5), LockMode::Exclusive),
            Err(Error::Deadlock)
        );
    }

    #[test]
    fn scan_conflicts_with_writers() {
        let m = mgr();
        m.lock(1, t(10), LockMode::IntentionExclusive).unwrap();
        // Younger full-table scan dies against the IX writer.
        assert_eq!(m.lock(2, t(10), LockMode::Shared), Err(Error::Deadlock));
        // IS readers coexist with IX.
        m.lock(3, t(10), LockMode::IntentionShared).unwrap();
    }

    #[test]
    fn exclusive_blocks_younger() {
        let m = mgr();
        m.lock(1, t(10), LockMode::Exclusive).unwrap();
        assert_eq!(m.lock(2, t(10), LockMode::Exclusive), Err(Error::Deadlock));
        assert_eq!(m.lock(2, t(10), LockMode::Shared), Err(Error::Deadlock));
        assert_eq!(
            m.lock(2, t(10), LockMode::IntentionShared),
            Err(Error::Deadlock)
        );
    }

    #[test]
    fn older_waits_until_release() {
        let m = Arc::new(mgr());
        m.lock(5, t(10), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(1, t(10), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished());
        m.release_all(5, [t(10)]);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.lock(1, t(10), LockMode::Shared).unwrap();
        m.lock(1, t(10), LockMode::Shared).unwrap();
        // Sole holder can upgrade to X.
        m.lock(1, t(10), LockMode::Exclusive).unwrap();
        m.lock(1, t(10), LockMode::IntentionExclusive).unwrap();
        let mask = m.holders(t(10))[0].1;
        assert!(mask & LockMode::Exclusive.bit() != 0);
    }

    #[test]
    fn upgrade_with_other_sharers_dies_if_younger() {
        let m = mgr();
        m.lock(1, t(10), LockMode::Shared).unwrap();
        m.lock(2, t(10), LockMode::Shared).unwrap();
        assert_eq!(m.lock(2, t(10), LockMode::Exclusive), Err(Error::Deadlock));
    }

    #[test]
    fn wait_times_out_as_deadlock() {
        let m = mgr();
        m.lock(5, t(10), LockMode::Exclusive).unwrap();
        let start = Instant::now();
        assert_eq!(m.lock(1, t(10), LockMode::Exclusive), Err(Error::Deadlock));
        assert!(start.elapsed() >= Duration::from_millis(300));
    }

    #[test]
    fn spurious_notifications_never_grant_a_conflicting_lock() {
        // Regression guard for the wait loop's predicate re-check: hammer
        // the condvar with notifications while the conflicting holder is
        // still live. Every wakeup re-evaluates `conflicting`, so the
        // waiter must still time out with Deadlock — a grant here would
        // mean a wakeup was trusted instead of the predicate.
        let m = Arc::new(mgr());
        m.lock(5, t(10), LockMode::Exclusive).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let noisy = {
            let (m2, stop2) = (Arc::clone(&m), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    for s in &m2.shards {
                        s.cv.notify_all();
                    }
                    std::thread::yield_now();
                }
            })
        };
        let started = Instant::now();
        let got = m.lock(1, t(10), LockMode::Exclusive);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        noisy.join().expect("notifier thread panicked");
        assert_eq!(got, Err(Error::Deadlock));
        // The storm of early wakeups must not shorten the wait bound.
        assert!(started.elapsed() >= Duration::from_millis(300));
        // The failed waiter left no empty entry behind.
        m.release_all(5, [t(10)]);
        assert!(m.holders(t(10)).is_empty());
    }

    #[test]
    fn release_unblocks_shared_crowd() {
        let m = Arc::new(mgr());
        m.lock(9, t(10), LockMode::Exclusive).unwrap();
        let mut handles = Vec::new();
        for txn in 1..=3 {
            let m2 = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                m2.lock(txn, t(10), LockMode::Shared)
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        m.release_all(9, [t(10)]);
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
        assert_eq!(m.holders(t(10)).len(), 3);
    }

    #[test]
    fn targets_partition_across_shards() {
        // The hash spreads the target space: a modest set of distinct
        // resources must touch more than one partition (this is the whole
        // point of sharding), while any single target always resolves to
        // exactly one shard (wait-die semantics preserved).
        let used: std::collections::HashSet<usize> = (0..64u64)
            .map(|k| LockManager::shard_of(&r(10, k)))
            .collect();
        assert!(used.len() > 1, "all targets hashed to one shard");
        for k in 0..64u64 {
            assert_eq!(
                LockManager::shard_of(&r(10, k)),
                LockManager::shard_of(&r(10, k))
            );
        }
        // Cross-shard independence: an X holder on one target never
        // blocks a younger locker of a different target.
        let m = mgr();
        m.lock(1, r(10, 1), LockMode::Exclusive).unwrap();
        for k in 2..10u64 {
            m.lock(k, r(10, k), LockMode::Exclusive).unwrap();
        }
    }

    #[test]
    fn row_and_table_locks_are_distinct_targets() {
        let m = mgr();
        m.lock(1, r(10, 1), LockMode::Exclusive).unwrap();
        // Table-level X is a different target: held modes there don't
        // conflict (hierarchy discipline is the caller's job via
        // intention locks).
        m.lock(1, t(10), LockMode::IntentionExclusive).unwrap();
        assert_eq!(m.holders(r(10, 1)).len(), 1);
        assert_eq!(m.holders(t(10)).len(), 1);
    }
}
