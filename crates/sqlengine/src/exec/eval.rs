//! Expression binding and evaluation, including the three subquery
//! execution strategies (uncorrelated-cached, decorrelated-grouped,
//! memoized-naive) and aggregation accumulators.

#![allow(missing_docs)] // executor-internal IR: names mirror the AST

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use super::binding::{agg_kind, resolve_col, AggCall, AggKind, BExpr, BoundCol, FuncKind};
use super::select::{relation_bindings, run_select_materialized};
use super::ExecCtx;
use crate::error::{Error, Result};
use crate::sql::ast::{BinOp, Expr, SelectItem, SelectStmt};
use crate::types::{date_year, sql_like, DataType, Row, Value};

// ---------------------------------------------------------------------------
// Subquery plans
// ---------------------------------------------------------------------------

/// What the subquery produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubKind {
    Exists,
    Scalar,
    InSet,
}

/// Scalar-subquery output under decorrelation.
#[derive(Debug)]
pub struct ScalarOut {
    /// Aggregates over the probed group (empty ⇒ `out` is per-row).
    pub aggs: Vec<AggCall>,
    pub out: BExpr,
}

/// Execution strategy, decided at bind time.
#[allow(clippy::large_enum_variant)] // one plan per subquery; size is fine
#[derive(Debug)]
pub enum SubStrategy {
    /// No outer references: run once, cache the result.
    Uncorrelated,
    /// Correlated only through `inner = outer` equality conjuncts:
    /// materialize the inner query once grouped by the inner key, probe
    /// per outer row.
    Decorrelated {
        inner_query: SelectStmt,
        inner_keys: Vec<BExpr>,
        /// Bound against the outer scopes (evaluated in the outer env).
        outer_keys: Vec<BExpr>,
        /// Bound against [inner, outer...]; evaluated with the candidate
        /// inner row as scope 0 and the outer env as parent.
        residual: Option<BExpr>,
        scalar: Option<ScalarOut>,
        inset_expr: Option<BExpr>,
    },
    /// Fallback: re-execute per distinct outer-reference tuple.
    Memoized { outer_refs: Vec<BExpr> },
}

/// Inner rows grouped by correlation key.
pub struct GroupedInner {
    pub cols: Vec<BoundCol>,
    pub map: HashMap<Vec<u8>, Vec<Row>>,
}

/// Mutable evaluation state for a subquery plan.
#[derive(Default)]
pub struct SubState {
    cached: Option<SubResult>,
    groups: Option<Arc<GroupedInner>>,
    memo: HashMap<Vec<u8>, SubResult>,
}

#[derive(Debug, Clone)]
pub enum SubResult {
    Bool(bool),
    Scalar(Value),
    Set {
        keys: HashSet<Vec<u8>>,
        has_null: bool,
    },
}

/// A prepared subquery.
pub struct SubPlan {
    pub kind: SubKind,
    pub query: SelectStmt,
    pub strategy: SubStrategy,
    /// Scopes visible *outside* the subquery, for re-binding at execution.
    pub outer_scopes: Vec<Vec<BoundCol>>,
    pub state: Mutex<SubState>,
}

impl std::fmt::Debug for SubPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubPlan")
            .field("kind", &self.kind)
            .field("strategy", &self.strategy)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

/// Evaluation environment: one row per scope, innermost first via `parent`
/// chaining; aggregate phases add `(group keys, agg results)`.
pub struct Env<'a> {
    pub row: &'a [Value],
    pub agg: Option<(&'a [Value], &'a [Value])>,
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    pub fn base(row: &'a [Value]) -> Env<'a> {
        Env {
            row,
            agg: None,
            parent: None,
        }
    }

    pub fn child(row: &'a [Value], parent: Option<&'a Env<'a>>) -> Env<'a> {
        Env {
            row,
            agg: None,
            parent,
        }
    }

    fn at_depth(&self, d: usize) -> Result<&Env<'a>> {
        let mut cur = self;
        for _ in 0..d {
            cur = cur
                .parent
                .ok_or_else(|| Error::Internal("scope depth out of range".into()))?;
        }
        Ok(cur)
    }
}

/// Canonical key encoding for grouping / set membership: numeric values of
/// different storage types compare equal (Int 42 == Float 42.0 == that Date).
pub fn key_encode(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 9);
    for v in vals {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&(*i as f64).to_bits().to_be_bytes());
            }
            Value::Float(f) => {
                out.push(1);
                out.extend_from_slice(&f.to_bits().to_be_bytes());
            }
            Value::Date(d) => {
                out.push(1);
                out.extend_from_slice(&(*d as f64).to_bits().to_be_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// AST normalization (case-insensitive structural equality)
// ---------------------------------------------------------------------------

/// Lowercase identifiers so structurally-equal expressions compare equal.
pub fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Column { table, name } => Expr::Column {
            table: table.as_ref().map(|t| t.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        },
        Expr::Func {
            name,
            args,
            distinct,
            star,
        } => Expr::Func {
            name: name.to_ascii_lowercase(),
            args: args.iter().map(normalize).collect(),
            distinct: *distinct,
            star: *star,
        },
        Expr::Neg(x) => Expr::Neg(Box::new(normalize(x))),
        Expr::Not(x) => Expr::Not(Box::new(normalize(x))),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(normalize(left)),
            right: Box::new(normalize(right)),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(normalize(expr)),
            pattern: Box::new(normalize(pattern)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize(expr)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(normalize(expr)),
            low: Box::new(normalize(low)),
            high: Box::new(normalize(high)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(normalize(expr)),
            list: list.iter().map(normalize).collect(),
            negated: *negated,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| (normalize(c), normalize(r)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(normalize(x))),
        },
        // Subquery-bearing expressions keep their query as-is (pointer-ish
        // equality is fine: they never participate in group matching).
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

/// Aggregate binding context for the aggregate output phase.
pub struct AggContext {
    /// Normalized group-by expressions.
    pub group_exprs: Vec<Expr>,
    pub key_types: Vec<DataType>,
    pub aggs: Vec<AggCall>,
}

/// Expression binder.
pub struct Binder<'b> {
    pub ctx: &'b ExecCtx,
    /// Innermost first.
    pub scopes: Vec<Vec<BoundCol>>,
    pub agg_ctx: Option<&'b AggContext>,
}

impl<'b> Binder<'b> {
    pub fn new(ctx: &'b ExecCtx, scopes: Vec<Vec<BoundCol>>) -> Self {
        Binder {
            ctx,
            scopes,
            agg_ctx: None,
        }
    }

    fn scope_refs(&self) -> Vec<&[BoundCol]> {
        self.scopes.iter().map(|s| s.as_slice()).collect()
    }

    pub fn bind(&self, e: &Expr) -> Result<BExpr> {
        if let Some(agg) = self.agg_ctx {
            let n = normalize(e);
            if let Some(i) = agg.group_exprs.iter().position(|g| *g == n) {
                return Ok(BExpr::GroupRef {
                    idx: i,
                    dtype: agg.key_types[i],
                });
            }
            if let Expr::Func { name, star, .. } = &n {
                if agg_kind(name, *star).is_some() {
                    if let Some(i) = agg.aggs.iter().position(|a| a.source == n) {
                        return Ok(BExpr::AggRef {
                            idx: i,
                            dtype: agg.aggs[i].result_type(),
                        });
                    }
                    return Err(Error::Internal("uncollected aggregate".into()));
                }
            }
        }
        match e {
            Expr::Literal(v) => Ok(BExpr::Literal(v.clone())),
            Expr::Param(p) => self
                .ctx
                .params
                .get(&p.to_ascii_lowercase())
                .cloned()
                .map(BExpr::Literal)
                .ok_or_else(|| Error::Semantic(format!("unbound parameter @{p}"))),
            Expr::Column { table, name } => {
                let scopes = self.scope_refs();
                let (depth, idx, dtype) = resolve_col(&scopes, table.as_deref(), name)?;
                Ok(BExpr::Col { depth, idx, dtype })
            }
            Expr::Neg(x) => Ok(BExpr::Neg(Box::new(self.bind(x)?))),
            Expr::Not(x) => Ok(BExpr::Not(Box::new(self.bind(x)?))),
            Expr::Binary { op, left, right } => Ok(BExpr::Binary {
                op: *op,
                left: Box::new(self.bind(left)?),
                right: Box::new(self.bind(right)?),
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BExpr::Like {
                expr: Box::new(self.bind(expr)?),
                pattern: Box::new(self.bind(pattern)?),
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                expr: Box::new(self.bind(expr)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(BExpr::Between {
                expr: Box::new(self.bind(expr)?),
                low: Box::new(self.bind(low)?),
                high: Box::new(self.bind(high)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BExpr::InList {
                expr: Box::new(self.bind(expr)?),
                list: list.iter().map(|x| self.bind(x)).collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => Ok(BExpr::InSub {
                expr: Box::new(self.bind(expr)?),
                plan: self.bind_subquery(query, SubKind::InSet)?,
                negated: *negated,
            }),
            Expr::Exists { query, negated } => Ok(BExpr::Exists {
                plan: self.bind_subquery(query, SubKind::Exists)?,
                negated: *negated,
            }),
            Expr::ScalarSubquery(query) => Ok(BExpr::Scalar {
                plan: self.bind_subquery(query, SubKind::Scalar)?,
            }),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let bb: Vec<(BExpr, BExpr)> = branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind(c)?, self.bind(r)?)))
                    .collect::<Result<_>>()?;
                let dtype = bb
                    .first()
                    .map(|(_, r)| r.dtype())
                    .unwrap_or(DataType::Float);
                Ok(BExpr::Case {
                    branches: bb,
                    else_expr: else_expr
                        .as_ref()
                        .map(|x| Ok(Box::new(self.bind(x)?)))
                        .transpose()?,
                    dtype,
                })
            }
            Expr::Func {
                name,
                args,
                distinct: _,
                star,
            } => {
                if agg_kind(name, *star).is_some() {
                    return Err(Error::Semantic(format!(
                        "aggregate {name} not allowed in this context"
                    )));
                }
                let func = FuncKind::from_name(name)
                    .ok_or_else(|| Error::Semantic(format!("unknown function {name}")))?;
                Ok(BExpr::Func {
                    func,
                    args: args.iter().map(|a| self.bind(a)).collect::<Result<_>>()?,
                })
            }
        }
    }

    /// Collect (deduplicated, normalized) aggregate calls appearing in `e`,
    /// binding their arguments against this binder's scopes.
    pub fn collect_aggs(&self, e: &Expr, out: &mut Vec<AggCall>) -> Result<()> {
        let n = normalize(e);
        let mut pending = Vec::new();
        n.walk(&mut |node| {
            if let Expr::Func {
                name,
                args,
                distinct,
                star,
            } = node
            {
                if let Some(kind) = agg_kind(name, *star) {
                    pending.push((kind, args.clone(), *distinct, node.clone()));
                }
            }
        });
        for (kind, args, distinct, source) in pending {
            if out.iter().any(|a| a.source == source) {
                continue;
            }
            let arg = match kind {
                AggKind::CountStar => None,
                _ => {
                    let a = args
                        .first()
                        .ok_or_else(|| Error::Semantic("aggregate requires an argument".into()))?;
                    Some(self.bind(a)?)
                }
            };
            out.push(AggCall {
                kind,
                arg,
                distinct,
                source,
            });
        }
        Ok(())
    }

    // -- subquery planning ---------------------------------------------------

    fn bind_subquery(&self, q: &SelectStmt, kind: SubKind) -> Result<Arc<SubPlan>> {
        let inner_scope = relation_bindings(self.ctx, &q.from)?;

        // Collect every column reference in the subquery (not descending
        // into nested subqueries) and classify inner vs outer.
        let mut cols: Vec<Expr> = Vec::new();
        let mut push_cols = |e: &Expr| {
            e.walk(&mut |n| {
                if matches!(n, Expr::Column { .. }) {
                    cols.push(n.clone());
                }
            });
        };
        if let Some(f) = &q.filter {
            push_cols(f);
        }
        for it in &q.items {
            if let SelectItem::Expr { expr, .. } = it {
                push_cols(expr);
            }
        }
        for g in &q.group_by {
            push_cols(g);
        }
        if let Some(h) = &q.having {
            push_cols(h);
        }
        for o in &q.order_by {
            push_cols(&o.expr);
        }

        let inner_ref: Vec<&[BoundCol]> = vec![&inner_scope];
        let mut has_outer = false;
        for c in &cols {
            let Expr::Column { table, name } = c else {
                continue;
            };
            if resolve_col(&inner_ref, table.as_deref(), name).is_err() {
                has_outer = true;
                break;
            }
        }

        let strategy = if !has_outer {
            SubStrategy::Uncorrelated
        } else {
            self.plan_correlated(q, kind, &inner_scope)?
        };

        Ok(Arc::new(SubPlan {
            kind,
            query: q.clone(),
            strategy,
            outer_scopes: self.scopes.clone(),
            state: Mutex::new(SubState::default()),
        }))
    }

    fn plan_correlated(
        &self,
        q: &SelectStmt,
        kind: SubKind,
        inner_scope: &[BoundCol],
    ) -> Result<SubStrategy> {
        let decorrelatable = q.group_by.is_empty()
            && q.having.is_none()
            && q.top.is_none()
            && q.order_by.is_empty()
            && q.filter.is_some()
            && !(q.distinct && kind == SubKind::Scalar);

        let mut extended = vec![inner_scope.to_vec()];
        extended.extend(self.scopes.iter().cloned());
        let ext_binder = Binder::new(self.ctx, extended);
        let outer_binder = Binder::new(self.ctx, self.scopes.clone());
        let inner_binder = Binder::new(self.ctx, vec![inner_scope.to_vec()]);

        // Helper: classify a conjunct's column references.
        let inner_ref: Vec<&[BoundCol]> = vec![inner_scope];
        let side = |e: &Expr| -> Result<(bool, bool, bool)> {
            // (has_inner, has_outer, has_subquery)
            let mut has_inner = false;
            let mut has_outer = false;
            let mut has_sub = false;
            let mut err = None;
            e.walk(&mut |n| match n {
                Expr::Column { table, name } => {
                    if resolve_col(&inner_ref, table.as_deref(), name).is_ok() {
                        has_inner = true;
                    } else {
                        // Must resolve somewhere outer; report later if not.
                        let scopes = ext_binder.scope_refs();
                        if resolve_col(&scopes, table.as_deref(), name).is_ok() {
                            has_outer = true;
                        } else if err.is_none() {
                            err = Some(Error::Semantic(format!(
                                "unknown column '{name}' in subquery"
                            )));
                        }
                    }
                }
                Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
                    has_sub = true;
                }
                _ => {}
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok((has_inner, has_outer, has_sub))
        };

        if let Some(filter) = q.filter.as_ref().filter(|_| decorrelatable) {
            let conjuncts = split_conjuncts(filter);
            let mut inner_conj: Vec<Expr> = Vec::new();
            let mut pairs: Vec<(Expr, Expr)> = Vec::new(); // (inner, outer)
            let mut residual: Vec<Expr> = Vec::new();
            let mut fallback = false;
            for c in &conjuncts {
                let (_, has_outer, has_sub) = side(c)?;
                if !has_outer {
                    inner_conj.push((*c).clone());
                    continue;
                }
                if has_sub {
                    fallback = true;
                    break;
                }
                if let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = c
                {
                    let (li, lo, _) = side(left)?;
                    let (ri, ro, _) = side(right)?;
                    if li && !lo && ro && !ri {
                        pairs.push(((**left).clone(), (**right).clone()));
                        continue;
                    }
                    if ri && !ro && lo && !li {
                        pairs.push(((**right).clone(), (**left).clone()));
                        continue;
                    }
                }
                residual.push((*c).clone());
            }
            if !fallback && !pairs.is_empty() {
                let inner_keys: Vec<BExpr> = pairs
                    .iter()
                    .map(|(i, _)| inner_binder.bind(i))
                    .collect::<Result<_>>()?;
                let outer_keys: Vec<BExpr> = pairs
                    .iter()
                    .map(|(_, o)| outer_binder.bind(o))
                    .collect::<Result<_>>()?;
                let residual_b = match residual.len() {
                    0 => None,
                    _ => Some(ext_binder.bind(&conjoin(residual))?),
                };
                let inner_query = SelectStmt {
                    distinct: false,
                    top: None,
                    items: vec![SelectItem::Wildcard],
                    from: q.from.clone(),
                    filter: if inner_conj.is_empty() {
                        None
                    } else {
                        Some(conjoin(inner_conj))
                    },
                    group_by: vec![],
                    having: None,
                    order_by: vec![],
                };
                // Output machinery per kind.
                let (scalar, inset_expr) = match kind {
                    SubKind::Exists => (None, None),
                    SubKind::Scalar => {
                        let item = match q.items.as_slice() {
                            [SelectItem::Expr { expr, .. }] => expr,
                            _ => {
                                return Err(Error::Semantic(
                                    "scalar subquery must select one expression".into(),
                                ))
                            }
                        };
                        let mut aggs = Vec::new();
                        inner_binder.collect_aggs(item, &mut aggs)?;
                        let out = if aggs.is_empty() {
                            ext_binder.bind(item)?
                        } else {
                            let agg_ctx = AggContext {
                                group_exprs: vec![],
                                key_types: vec![],
                                aggs: aggs.clone(),
                            };
                            let b = Binder {
                                ctx: self.ctx,
                                scopes: ext_binder.scopes.clone(),
                                agg_ctx: Some(&agg_ctx),
                            };
                            b.bind(item)?
                        };
                        (Some(ScalarOut { aggs, out }), None)
                    }
                    SubKind::InSet => {
                        let item = match q.items.as_slice() {
                            [SelectItem::Expr { expr, .. }] => expr,
                            _ => {
                                return Err(Error::Semantic(
                                    "IN subquery must select one expression".into(),
                                ))
                            }
                        };
                        (None, Some(ext_binder.bind(item)?))
                    }
                };
                return Ok(SubStrategy::Decorrelated {
                    inner_query,
                    inner_keys,
                    outer_keys,
                    residual: residual_b,
                    scalar,
                    inset_expr,
                });
            }
        }

        // Memoized fallback: find the distinct outer column refs.
        let mut outer_cols: Vec<Expr> = Vec::new();
        let mut record = |e: &Expr| -> Result<()> {
            let mut err = None;
            e.walk(&mut |n| {
                if let Expr::Column { table, name } = n {
                    if resolve_col(&[inner_scope], table.as_deref(), name).is_err() {
                        let scopes = self.scopes.iter().map(|s| s.as_slice()).collect::<Vec<_>>();
                        if resolve_col(&scopes, table.as_deref(), name).is_ok() {
                            let norm = normalize(n);
                            if !outer_cols.contains(&norm) {
                                outer_cols.push(norm);
                            }
                        } else if err.is_none() {
                            err = Some(Error::Semantic(format!(
                                "unknown column '{name}' in subquery"
                            )));
                        }
                    }
                }
            });
            err.map_or(Ok(()), Err)
        };
        if let Some(f) = &q.filter {
            record(f)?;
        }
        for it in &q.items {
            if let SelectItem::Expr { expr, .. } = it {
                record(expr)?;
            }
        }
        for g in &q.group_by {
            record(g)?;
        }
        if let Some(h) = &q.having {
            record(h)?;
        }
        let outer_refs: Vec<BExpr> = outer_cols
            .iter()
            .map(|c| outer_binder.bind(c))
            .collect::<Result<_>>()?;
        Ok(SubStrategy::Memoized { outer_refs })
    }
}

/// Split an expression into AND-ed conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } = e
        {
            rec(left, out);
            rec(right, out);
        } else {
            out.push(e);
        }
    }
    rec(e, &mut out);
    out
}

/// AND together a list of expressions.
pub fn conjoin(mut list: Vec<Expr>) -> Expr {
    // The empty conjunction is vacuously true.
    let mut acc = match list.pop() {
        Some(e) => e,
        None => Expr::Literal(Value::Int(1)),
    };
    while let Some(e) = list.pop() {
        acc = Expr::Binary {
            op: BinOp::And,
            left: Box::new(e),
            right: Box::new(acc),
        };
    }
    acc
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// SQL truthiness: NULL ⇒ unknown.
pub fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        Value::Str(s) => Some(!s.is_empty()),
        Value::Date(_) => Some(true),
    }
}

fn bool_val(b: Option<bool>) -> Value {
    match b {
        Some(true) => Value::Int(1),
        Some(false) => Value::Int(0),
        None => Value::Null,
    }
}

/// Evaluate a bound expression.
pub fn eval(ctx: &ExecCtx, env: &Env<'_>, e: &BExpr) -> Result<Value> {
    match e {
        BExpr::Literal(v) => Ok(v.clone()),
        BExpr::Col { depth, idx, .. } => {
            let scope = env.at_depth(*depth)?;
            scope
                .row
                .get(*idx)
                .cloned()
                .ok_or_else(|| Error::Internal(format!("row too short for col {idx}")))
        }
        BExpr::AggRef { idx, .. } => {
            let (_, aggs) = env
                .agg
                .ok_or_else(|| Error::Internal("AggRef outside aggregate phase".into()))?;
            Ok(aggs[*idx].clone())
        }
        BExpr::GroupRef { idx, .. } => {
            let (keys, _) = env
                .agg
                .ok_or_else(|| Error::Internal("GroupRef outside aggregate phase".into()))?;
            Ok(keys[*idx].clone())
        }
        BExpr::Neg(x) => match eval(ctx, env, x)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(Error::Semantic(format!("cannot negate {v}"))),
        },
        BExpr::Not(x) => {
            let v = eval(ctx, env, x)?;
            Ok(bool_val(truthy(&v).map(|b| !b)))
        }
        BExpr::Binary { op, left, right } => eval_binary(ctx, env, *op, left, right),
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(ctx, env, expr)?;
            let p = eval(ctx, env, pattern)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    let m = sql_like(&s, &pat);
                    Ok(bool_val(Some(m != *negated)))
                }
                _ => Err(Error::Semantic("LIKE requires strings".into())),
            }
        }
        BExpr::IsNull { expr, negated } => {
            let v = eval(ctx, env, expr)?;
            Ok(bool_val(Some(v.is_null() != *negated)))
        }
        BExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(ctx, env, expr)?;
            let lo = eval(ctx, env, low)?;
            let hi = eval(ctx, env, high)?;
            let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            let b = and3(ge, le);
            Ok(bool_val(if *negated { b.map(|x| !x) } else { b }))
        }
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(ctx, env, expr)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(ctx, env, item)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    return Ok(bool_val(Some(!*negated)));
                }
            }
            if saw_null {
                return Ok(Value::Null);
            }
            Ok(bool_val(Some(*negated)))
        }
        BExpr::InSub {
            expr,
            plan,
            negated,
        } => {
            let v = eval(ctx, env, expr)?;
            let r = eval_subquery(ctx, env, plan)?;
            let SubResult::Set { keys, has_null } = r else {
                return Err(Error::Internal("IN subquery produced non-set".into()));
            };
            if v.is_null() {
                return Ok(Value::Null);
            }
            let k = key_encode(std::slice::from_ref(&v));
            let b = if keys.contains(&k) {
                Some(true)
            } else if has_null {
                None
            } else {
                Some(false)
            };
            Ok(bool_val(if *negated { b.map(|x| !x) } else { b }))
        }
        BExpr::Exists { plan, negated } => {
            let r = eval_subquery(ctx, env, plan)?;
            let SubResult::Bool(b) = r else {
                return Err(Error::Internal("EXISTS produced non-bool".into()));
            };
            Ok(bool_val(Some(b != *negated)))
        }
        BExpr::Scalar { plan } => {
            let r = eval_subquery(ctx, env, plan)?;
            let SubResult::Scalar(v) = r else {
                return Err(Error::Internal(
                    "scalar subquery produced non-scalar".into(),
                ));
            };
            Ok(v)
        }
        BExpr::Case {
            branches,
            else_expr,
            ..
        } => {
            for (c, r) in branches {
                if truthy(&eval(ctx, env, c)?) == Some(true) {
                    return eval(ctx, env, r);
                }
            }
            match else_expr {
                Some(x) => eval(ctx, env, x),
                None => Ok(Value::Null),
            }
        }
        BExpr::Func { func, args } => eval_func(ctx, env, *func, args),
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn eval_binary(
    ctx: &ExecCtx,
    env: &Env<'_>,
    op: BinOp,
    left: &BExpr,
    right: &BExpr,
) -> Result<Value> {
    match op {
        BinOp::And => {
            let l = truthy(&eval(ctx, env, left)?);
            if l == Some(false) {
                return Ok(bool_val(Some(false)));
            }
            let r = truthy(&eval(ctx, env, right)?);
            Ok(bool_val(and3(l, r)))
        }
        BinOp::Or => {
            let l = truthy(&eval(ctx, env, left)?);
            if l == Some(true) {
                return Ok(bool_val(Some(true)));
            }
            let r = truthy(&eval(ctx, env, right)?);
            Ok(bool_val(match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }))
        }
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let l = eval(ctx, env, left)?;
            let r = eval(ctx, env, right)?;
            let cmp = l.sql_cmp(&r);
            let b = cmp.map(|o| match op {
                BinOp::Eq => o == std::cmp::Ordering::Equal,
                BinOp::Neq => o != std::cmp::Ordering::Equal,
                BinOp::Lt => o == std::cmp::Ordering::Less,
                BinOp::Le => o != std::cmp::Ordering::Greater,
                BinOp::Gt => o == std::cmp::Ordering::Greater,
                // Ge; the enclosing arm admits only the six comparisons.
                _ => o != std::cmp::Ordering::Less,
            });
            Ok(bool_val(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let l = eval(ctx, env, left)?;
            let r = eval(ctx, env, right)?;
            arith(op, l, r)
        }
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    // Date ± Int keeps date-ness.
    if let (Date(d), Int(i)) = (&l, &r) {
        return Ok(match op {
            BinOp::Add => Date(d + *i as i32),
            BinOp::Sub => Date(d - *i as i32),
            _ => return num_arith(op, *d as f64, *i as f64, false),
        });
    }
    let both_int = matches!((&l, &r), (Int(_), Int(_)));
    let (a, b) = (
        l.as_f64()
            .ok_or_else(|| Error::Semantic(format!("non-numeric operand {l}")))?,
        r.as_f64()
            .ok_or_else(|| Error::Semantic(format!("non-numeric operand {r}")))?,
    );
    num_arith(op, a, b, both_int)
}

fn num_arith(op: BinOp, a: f64, b: f64, both_int: bool) -> Result<Value> {
    let f = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        // Mod, plus any non-arithmetic operator the callers never pass.
        _ => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a % b
        }
    };
    if both_int && op != BinOp::Div {
        Ok(Value::Int(f as i64))
    } else {
        Ok(Value::Float(f))
    }
}

fn eval_func(ctx: &ExecCtx, env: &Env<'_>, func: FuncKind, args: &[BExpr]) -> Result<Value> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval(ctx, env, a))
        .collect::<Result<_>>()?;
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match func {
        FuncKind::Year => match &vals[0] {
            Value::Date(d) => Ok(Value::Int(date_year(*d))),
            Value::Str(s) => Ok(Value::Int(date_year(crate::types::parse_date(s)?))),
            v => Err(Error::Semantic(format!("YEAR of non-date {v}"))),
        },
        FuncKind::Substring => {
            let s = vals[0]
                .as_str()
                .ok_or_else(|| Error::Semantic("SUBSTRING of non-string".into()))?;
            let start = vals
                .get(1)
                .and_then(|v| v.as_i64())
                .ok_or_else(|| Error::Semantic("SUBSTRING start".into()))?
                .max(1) as usize;
            let len = vals.get(2).and_then(|v| v.as_i64()).unwrap_or(i64::MAX) as usize;
            let out: String = s.chars().skip(start - 1).take(len).collect();
            Ok(Value::Str(out))
        }
        FuncKind::Upper => Ok(Value::Str(
            vals[0]
                .as_str()
                .ok_or_else(|| Error::Semantic("UPPER of non-string".into()))?
                .to_uppercase(),
        )),
        FuncKind::Lower => Ok(Value::Str(
            vals[0]
                .as_str()
                .ok_or_else(|| Error::Semantic("LOWER of non-string".into()))?
                .to_lowercase(),
        )),
        FuncKind::Abs => match &vals[0] {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(Error::Semantic(format!("ABS of non-numeric {v}"))),
        },
        FuncKind::Round => {
            let x = vals[0]
                .as_f64()
                .ok_or_else(|| Error::Semantic("ROUND of non-numeric".into()))?;
            let digits = vals.get(1).and_then(|v| v.as_i64()).unwrap_or(0);
            let m = 10f64.powi(digits as i32);
            Ok(Value::Float((x * m).round() / m))
        }
    }
}

// ---------------------------------------------------------------------------
// Subquery evaluation
// ---------------------------------------------------------------------------

fn result_from_rows(kind: SubKind, rows: &[Row]) -> SubResult {
    match kind {
        SubKind::Exists => SubResult::Bool(!rows.is_empty()),
        SubKind::Scalar => SubResult::Scalar(
            rows.first()
                .and_then(|r| r.first())
                .cloned()
                .unwrap_or(Value::Null),
        ),
        SubKind::InSet => {
            let mut keys = HashSet::with_capacity(rows.len());
            let mut has_null = false;
            for r in rows {
                match r.first() {
                    Some(Value::Null) | None => has_null = true,
                    Some(v) => {
                        keys.insert(key_encode(std::slice::from_ref(v)));
                    }
                }
            }
            SubResult::Set { keys, has_null }
        }
    }
}

fn eval_subquery(ctx: &ExecCtx, env: &Env<'_>, plan: &SubPlan) -> Result<SubResult> {
    match &plan.strategy {
        SubStrategy::Uncorrelated => {
            if let Some(r) = &plan.state.lock().cached {
                return Ok(r.clone());
            }
            let rel = run_select_materialized(ctx, &plan.query, &[], None)?;
            let r = result_from_rows(plan.kind, &rel.rows);
            plan.state.lock().cached = Some(r.clone());
            Ok(r)
        }
        SubStrategy::Memoized { outer_refs } => {
            let key_vals: Vec<Value> = outer_refs
                .iter()
                .map(|e| eval(ctx, env, e))
                .collect::<Result<_>>()?;
            let key = key_encode(&key_vals);
            if let Some(r) = plan.state.lock().memo.get(&key) {
                return Ok(r.clone());
            }
            let rel = run_select_materialized(ctx, &plan.query, &plan.outer_scopes, Some(env))?;
            let r = result_from_rows(plan.kind, &rel.rows);
            plan.state.lock().memo.insert(key, r.clone());
            Ok(r)
        }
        SubStrategy::Decorrelated {
            inner_query,
            inner_keys,
            outer_keys,
            residual,
            scalar,
            inset_expr,
        } => {
            // Build the grouped inner materialization once.
            let groups = {
                let st = plan.state.lock();
                st.groups.clone()
            };
            let groups = match groups {
                Some(g) => g,
                None => {
                    let rel = run_select_materialized(ctx, inner_query, &[], None)?;
                    let mut map: HashMap<Vec<u8>, Vec<Row>> = HashMap::new();
                    for row in rel.rows {
                        let renv = Env::base(&row);
                        let kv: Vec<Value> = inner_keys
                            .iter()
                            .map(|k| eval(ctx, &renv, k))
                            .collect::<Result<_>>()?;
                        map.entry(key_encode(&kv)).or_default().push(row);
                    }
                    let g = Arc::new(GroupedInner {
                        cols: rel.cols,
                        map,
                    });
                    plan.state.lock().groups = Some(Arc::clone(&g));
                    g
                }
            };
            // Probe.
            let probe_vals: Vec<Value> = outer_keys
                .iter()
                .map(|e| eval(ctx, env, e))
                .collect::<Result<_>>()?;
            let probe = key_encode(&probe_vals);
            // Result cache valid only when there is no residual referencing
            // outer values beyond the key.
            let cacheable = residual.is_none();
            if cacheable {
                if let Some(r) = plan.state.lock().memo.get(&probe) {
                    return Ok(r.clone());
                }
            }
            let empty: Vec<Row> = Vec::new();
            let candidates = groups.map.get(&probe).unwrap_or(&empty);
            // Apply residual with (inner row, outer env).
            let passing: Vec<&Row> = match residual {
                None => candidates.iter().collect(),
                Some(res) => {
                    let mut out = Vec::new();
                    for row in candidates {
                        let renv = Env::child(row, Some(env));
                        if truthy(&eval(ctx, &renv, res)?) == Some(true) {
                            out.push(row);
                        }
                    }
                    out
                }
            };
            let r = match plan.kind {
                SubKind::Exists => SubResult::Bool(!passing.is_empty()),
                SubKind::Scalar => {
                    let so = scalar
                        .as_ref()
                        .ok_or_else(|| Error::Internal("missing scalar plan".into()))?;
                    if so.aggs.is_empty() {
                        let v = match passing.first() {
                            Some(row) => {
                                let renv = Env::child(row, Some(env));
                                eval(ctx, &renv, &so.out)?
                            }
                            None => Value::Null,
                        };
                        SubResult::Scalar(v)
                    } else {
                        let mut accs: Vec<Accumulator> =
                            so.aggs.iter().map(Accumulator::new).collect();
                        for row in &passing {
                            let renv = Env::child(row, Some(env));
                            for (acc, call) in accs.iter_mut().zip(&so.aggs) {
                                let v = match &call.arg {
                                    Some(a) => eval(ctx, &renv, a)?,
                                    None => Value::Int(1),
                                };
                                acc.add(v);
                            }
                        }
                        let agg_vals: Vec<Value> =
                            accs.into_iter().map(Accumulator::finish).collect();
                        let rep: Row = Vec::new();
                        let out_env = Env {
                            row: &rep,
                            agg: Some((&[], &agg_vals)),
                            parent: Some(env),
                        };
                        SubResult::Scalar(eval(ctx, &out_env, &so.out)?)
                    }
                }
                SubKind::InSet => {
                    let ie = inset_expr
                        .as_ref()
                        .ok_or_else(|| Error::Internal("missing IN plan".into()))?;
                    let mut keys = HashSet::new();
                    let mut has_null = false;
                    for row in &passing {
                        let renv = Env::child(row, Some(env));
                        let v = eval(ctx, &renv, ie)?;
                        if v.is_null() {
                            has_null = true;
                        } else {
                            keys.insert(key_encode(std::slice::from_ref(&v)));
                        }
                    }
                    SubResult::Set { keys, has_null }
                }
            };
            if cacheable {
                plan.state.lock().memo.insert(probe, r.clone());
            }
            Ok(r)
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation accumulators
// ---------------------------------------------------------------------------

/// Streaming accumulator for one aggregate call.
pub struct Accumulator {
    kind: AggKind,
    distinct: Option<HashSet<Vec<u8>>>,
    count: i64,
    sum: f64,
    int_sum: i64,
    ints_only: bool,
    best: Option<Value>,
}

impl Accumulator {
    pub fn new(call: &AggCall) -> Accumulator {
        Accumulator {
            kind: call.kind,
            distinct: if call.distinct {
                Some(HashSet::new())
            } else {
                None
            },
            count: 0,
            sum: 0.0,
            int_sum: 0,
            ints_only: true,
            best: None,
        }
    }

    pub fn add(&mut self, v: Value) {
        if self.kind != AggKind::CountStar && v.is_null() {
            return;
        }
        if let Some(seen) = &mut self.distinct {
            let k = key_encode(std::slice::from_ref(&v));
            if !seen.insert(k) {
                return;
            }
        }
        self.count += 1;
        match self.kind {
            AggKind::Sum | AggKind::Avg => {
                match &v {
                    Value::Int(i) => {
                        self.int_sum += i;
                        self.sum += *i as f64;
                    }
                    other => {
                        self.ints_only = false;
                        self.sum += other.as_f64().unwrap_or(0.0);
                    }
                };
            }
            AggKind::Min => {
                let better = match &self.best {
                    None => true,
                    Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                };
                if better {
                    self.best = Some(v);
                }
            }
            AggKind::Max => {
                let better = match &self.best {
                    None => true,
                    Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                };
                if better {
                    self.best = Some(v);
                }
            }
            AggKind::Count | AggKind::CountStar => {}
        }
    }

    pub fn finish(self) -> Value {
        match self.kind {
            AggKind::Count | AggKind::CountStar => Value::Int(self.count),
            AggKind::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.ints_only {
                    Value::Int(self.int_sum)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(kind: AggKind, distinct: bool) -> Accumulator {
        Accumulator::new(&AggCall {
            kind,
            arg: None,
            distinct,
            source: Expr::Literal(Value::Null),
        })
    }

    #[test]
    fn sum_int_stays_int() {
        let mut a = acc(AggKind::Sum, false);
        for i in 1..=4 {
            a.add(Value::Int(i));
        }
        assert_eq!(a.finish(), Value::Int(10));
    }

    #[test]
    fn sum_mixed_floats() {
        let mut a = acc(AggKind::Sum, false);
        a.add(Value::Int(1));
        a.add(Value::Float(0.5));
        assert_eq!(a.finish(), Value::Float(1.5));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(acc(AggKind::Sum, false).finish(), Value::Null);
        assert_eq!(acc(AggKind::Avg, false).finish(), Value::Null);
        assert_eq!(acc(AggKind::Min, false).finish(), Value::Null);
        assert_eq!(acc(AggKind::Count, false).finish(), Value::Int(0));
        assert_eq!(acc(AggKind::CountStar, false).finish(), Value::Int(0));
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let mut c = acc(AggKind::Count, false);
        c.add(Value::Null);
        c.add(Value::Int(1));
        assert_eq!(c.finish(), Value::Int(1));
        let mut cs = acc(AggKind::CountStar, false);
        cs.add(Value::Null);
        cs.add(Value::Int(1));
        assert_eq!(cs.finish(), Value::Int(2));
    }

    #[test]
    fn distinct_count() {
        let mut a = acc(AggKind::Count, true);
        for v in [1, 2, 2, 3, 3, 3] {
            a.add(Value::Int(v));
        }
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn min_max() {
        let mut mn = acc(AggKind::Min, false);
        let mut mx = acc(AggKind::Max, false);
        for v in [5, 1, 9, 3] {
            mn.add(Value::Int(v));
            mx.add(Value::Int(v));
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(9));
    }

    #[test]
    fn key_encode_numeric_crosses_types() {
        assert_eq!(
            key_encode(&[Value::Int(42)]),
            key_encode(&[Value::Float(42.0)])
        );
        assert_ne!(key_encode(&[Value::Int(1)]), key_encode(&[Value::Null]));
        assert_ne!(
            key_encode(&[Value::Str("1".into())]),
            key_encode(&[Value::Int(1)])
        );
    }

    #[test]
    fn split_and_conjoin() {
        let e = crate::sql::parser::parse_one("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3")
            .unwrap();
        let crate::sql::ast::Stmt::Select(q) = e else {
            panic!()
        };
        let cs = split_conjuncts(q.filter.as_ref().unwrap());
        assert_eq!(cs.len(), 3);
        let rejoined = conjoin(cs.into_iter().cloned().collect());
        assert_eq!(split_conjuncts(&rejoined).len(), 3);
    }

    #[test]
    fn normalize_case_insensitive_equality() {
        let a = normalize(&Expr::Column {
            table: Some("T".into()),
            name: "Col".into(),
        });
        let b = normalize(&Expr::Column {
            table: Some("t".into()),
            name: "col".into(),
        });
        assert_eq!(a, b);
    }
}
