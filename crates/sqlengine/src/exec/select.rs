//! SELECT execution: scan with predicate pushdown and primary-key fast
//! path, greedy hash-join planning, grouping/aggregation, HAVING,
//! DISTINCT, ORDER BY, TOP, and projection — plus static output-schema
//! inference, which is what makes the Phoenix `WHERE 0=1` metadata probe
//! metadata-only on this engine too (constant-false predicates are folded
//! before any scan happens).

use std::collections::HashMap;

use super::binding::{AggCall, BExpr, BoundCol};
use super::eval::{
    conjoin, eval, key_encode, normalize, split_conjuncts, truthy, Accumulator, AggContext, Binder,
    Env,
};
use super::{ExecCtx, TableSource};
use crate::error::{Error, Result};
use crate::schema::Column;
use crate::sql::ast::{BinOp, Expr, OrderItem, SelectItem, SelectStmt, TableRef};
use crate::txn::locks::LockMode;
use crate::types::{DataType, Row, Value};

/// A materialized relation.
#[derive(Debug, Clone)]
pub struct Rel {
    /// Output column bindings.
    pub cols: Vec<BoundCol>,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Rel {
    /// Zero-row relation with the given shape.
    pub fn empty(cols: Vec<BoundCol>) -> Rel {
        Rel {
            cols,
            rows: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Static bindings / schema inference
// ---------------------------------------------------------------------------

/// Compute the column bindings a FROM clause produces, without executing.
pub fn relation_bindings(ctx: &ExecCtx, from: &[TableRef]) -> Result<Vec<BoundCol>> {
    let mut out = Vec::new();
    for tr in from {
        table_ref_bindings(ctx, tr, &mut out)?;
    }
    Ok(out)
}

fn table_ref_bindings(ctx: &ExecCtx, tr: &TableRef, out: &mut Vec<BoundCol>) -> Result<()> {
    match tr {
        TableRef::Table { table, alias } => {
            let src = ctx.resolve_table(table)?;
            let qual = alias.clone().unwrap_or_else(|| table.name.clone());
            for c in &src.schema().columns {
                out.push(BoundCol::new(Some(qual.clone()), c.name.clone(), c.dtype));
            }
        }
        TableRef::Derived { query, alias } => {
            let schema = infer_output_schema(ctx, query)?;
            for c in schema {
                out.push(BoundCol::new(Some(alias.clone()), c.name, c.dtype));
            }
        }
        TableRef::Join { left, right, .. } => {
            table_ref_bindings(ctx, left, out)?;
            table_ref_bindings(ctx, right, out)?;
        }
    }
    Ok(())
}

/// Static output schema of a SELECT — names and types — without executing
/// it. This is the engine-side substrate for the `WHERE 0=1` trick: Phoenix
/// gets complete result metadata from a query that never scans.
pub fn infer_output_schema(ctx: &ExecCtx, q: &SelectStmt) -> Result<Vec<Column>> {
    let input = relation_bindings(ctx, &q.from)?;
    let binder = Binder::new(ctx, vec![input.clone()]);

    // Aggregate context if needed (types of SUM(x) etc.).
    let has_aggs = q
        .items
        .iter()
        .any(|it| matches!(it, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || !q.group_by.is_empty();
    let agg_ctx = if has_aggs {
        let mut aggs: Vec<AggCall> = Vec::new();
        for it in &q.items {
            if let SelectItem::Expr { expr, .. } = it {
                binder.collect_aggs(expr, &mut aggs)?;
            }
        }
        if let Some(h) = &q.having {
            binder.collect_aggs(h, &mut aggs)?;
        }
        let group_exprs: Vec<Expr> = q.group_by.iter().map(normalize).collect();
        let key_types: Vec<DataType> = q
            .group_by
            .iter()
            .map(|g| binder.bind(g).map(|b| b.dtype()))
            .collect::<Result<_>>()?;
        Some(AggContext {
            group_exprs,
            key_types,
            aggs,
        })
    } else {
        None
    };
    let binder = Binder {
        ctx,
        scopes: vec![input.clone()],
        agg_ctx: agg_ctx.as_ref(),
    };

    let mut out = Vec::new();
    for (i, it) in q.items.iter().enumerate() {
        match it {
            SelectItem::Wildcard => {
                for c in &input {
                    out.push(Column::new(c.name.clone(), c.dtype));
                }
            }
            SelectItem::QualifiedWildcard(qual) => {
                for c in input.iter().filter(|c| {
                    c.qual
                        .as_deref()
                        .map(|x| x.eq_ignore_ascii_case(qual))
                        .unwrap_or(false)
                }) {
                    out.push(Column::new(c.name.clone(), c.dtype));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let b = binder.bind(expr)?;
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                out.push(Column::new(name, b.dtype()));
            }
        }
    }
    Ok(out)
}

fn default_name(e: &Expr, idx: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{}", idx + 1),
    }
}

// ---------------------------------------------------------------------------
// Scanning with pushdown
// ---------------------------------------------------------------------------

/// Scan a base/temp table applying pushed-down conjuncts, using the PK
/// hash index when the conjuncts pin every key column to a constant.
fn scan_filtered(
    ctx: &ExecCtx,
    table: &crate::sql::ast::TableName,
    alias: Option<&str>,
    pushed: &[&Expr],
) -> Result<Rel> {
    let src = ctx.resolve_table(table)?;
    let qual = alias
        .map(|s| s.to_string())
        .unwrap_or_else(|| table.name.clone());
    let cols: Vec<BoundCol> = src
        .schema()
        .columns
        .iter()
        .map(|c| BoundCol::new(Some(qual.clone()), c.name.clone(), c.dtype))
        .collect();

    let binder = Binder::new(ctx, vec![cols.clone()]);
    let filter = match pushed.len() {
        0 => None,
        _ => Some(binder.bind(&conjoin(pushed.iter().map(|e| (*e).clone()).collect()))?),
    };

    match &src {
        TableSource::Base { meta, .. } => {
            let (table_id, schema) = {
                let m = meta.read();
                (m.id, m.schema.clone())
            };

            // PK fast path: every key column pinned by an equality
            // constant — point read under IS + a row S lock.
            if !schema.primary_key.is_empty() {
                if let Some(key_vals) = pk_probe(ctx, &schema, pushed)? {
                    ctx.storage
                        .lock_table(&ctx.txn, table_id, LockMode::IntentionShared)?;
                    let key_bytes = crate::storage::heap::pk_lookup_bytes(&schema, &key_vals)?;
                    ctx.storage.lock_row(
                        &ctx.txn,
                        table_id,
                        crate::storage::heap::row_key_hash(&key_bytes),
                        LockMode::Shared,
                    )?;
                    let mut rows = Vec::new();
                    if let Some(rid) = ctx.storage.pk_lookup(table_id, &key_vals)? {
                        if let Some(row) = ctx.storage.fetch_row(rid)? {
                            let keep = match &filter {
                                Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
                                None => true,
                            };
                            if keep {
                                rows.push(row);
                            }
                        }
                    }
                    return Ok(Rel { cols, rows });
                }
            }

            ctx.storage
                .lock_table(&ctx.txn, table_id, LockMode::Shared)?;
            let mut rows = Vec::new();
            for item in ctx.storage.scan(table_id)? {
                let (_, row) = item?;
                let keep = match &filter {
                    Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
                    None => true,
                };
                if keep {
                    rows.push(row);
                }
            }
            Ok(Rel { cols, rows })
        }
        TableSource::Temp { rows: trows, .. } => {
            let mut rows = Vec::new();
            for row in trows {
                let keep = match &filter {
                    Some(f) => truthy(&eval(ctx, &Env::base(row), f)?) == Some(true),
                    None => true,
                };
                if keep {
                    rows.push(row.clone());
                }
            }
            Ok(Rel { cols, rows })
        }
    }
}

/// If `pushed` pins every PK column with `col = literal`, return the key.
pub(crate) fn pk_probe(
    ctx: &ExecCtx,
    schema: &crate::schema::TableSchema,
    pushed: &[&Expr],
) -> Result<Option<Vec<Value>>> {
    let mut found: HashMap<usize, Value> = HashMap::new();
    for c in pushed {
        let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        else {
            continue;
        };
        let (col, lit) = match (&**left, &**right) {
            (Expr::Column { name, .. }, other) => match const_value(ctx, other) {
                Some(v) => (name, v),
                None => continue,
            },
            (other, Expr::Column { name, .. }) => match const_value(ctx, other) {
                Some(v) => (name, v),
                None => continue,
            },
            _ => continue,
        };
        if let Some(i) = schema.col_index(col) {
            found.entry(i).or_insert(lit);
        }
    }
    let key: Option<Vec<Value>> = schema
        .primary_key
        .iter()
        .map(|i| found.get(i).cloned())
        .collect();
    Ok(key)
}

fn const_value(ctx: &ExecCtx, e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Neg(inner) => match const_value(ctx, inner)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        Expr::Param(p) => ctx.params.get(&p.to_ascii_lowercase()).cloned(),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Join planning
// ---------------------------------------------------------------------------

/// Evaluate one FROM unit (table / derived / join tree) into a relation.
fn eval_table_ref(ctx: &ExecCtx, tr: &TableRef, pushed: &[&Expr]) -> Result<Rel> {
    match tr {
        TableRef::Table { table, alias } => scan_filtered(ctx, table, alias.as_deref(), pushed),
        TableRef::Derived { query, alias } => {
            let rel = run_select_materialized(ctx, query, &[], None)?;
            let cols = rel
                .cols
                .iter()
                .map(|c| BoundCol::new(Some(alias.clone()), c.name.clone(), c.dtype))
                .collect();
            let mut out = Rel {
                cols,
                rows: rel.rows,
            };
            apply_filter(ctx, &mut out, pushed)?;
            Ok(out)
        }
        TableRef::Join {
            left,
            right,
            on,
            outer,
        } => {
            let l = eval_table_ref(ctx, left, &[])?;
            let r = eval_table_ref(ctx, right, &[])?;
            let mut joined = join_on(ctx, l, r, on, *outer)?;
            apply_filter(ctx, &mut joined, pushed)?;
            Ok(joined)
        }
    }
}

fn apply_filter(ctx: &ExecCtx, rel: &mut Rel, pushed: &[&Expr]) -> Result<()> {
    if pushed.is_empty() {
        return Ok(());
    }
    let binder = Binder::new(ctx, vec![rel.cols.clone()]);
    let f = binder.bind(&conjoin(pushed.iter().map(|e| (*e).clone()).collect()))?;
    let mut kept = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        if truthy(&eval(ctx, &Env::base(&row), &f)?) == Some(true) {
            kept.push(row);
        }
    }
    rel.rows = kept;
    Ok(())
}

/// Hash join (or nested loop for non-equi ON) of two relations.
fn join_on(ctx: &ExecCtx, left: Rel, right: Rel, on: &Expr, outer: bool) -> Result<Rel> {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.clone());
    let combined_binder = Binder::new(ctx, vec![cols.clone()]);

    // Try to extract equi-conditions usable for hashing.
    let conjuncts = split_conjuncts(on);
    let lbinder = Binder::new(ctx, vec![left.cols.clone()]);
    let rbinder = Binder::new(ctx, vec![right.cols.clone()]);
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            match (lbinder.bind(a), rbinder.bind(b)) {
                (Ok(la), Ok(rb)) => {
                    lkeys.push(la);
                    rkeys.push(rb);
                    continue;
                }
                _ => {
                    if let (Ok(lb), Ok(ra)) = (lbinder.bind(b), rbinder.bind(a)) {
                        lkeys.push(lb);
                        rkeys.push(ra);
                        continue;
                    }
                }
            }
        }
        residual.push(c.clone());
    }
    let residual_b = if residual.is_empty() {
        None
    } else {
        Some(combined_binder.bind(&conjoin(residual))?)
    };

    let rwidth = right.cols.len();
    let mut out_rows = Vec::new();
    if !lkeys.is_empty() {
        // Build on right, probe left (preserves left order; left outer easy).
        let mut table: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
        for rrow in &right.rows {
            let env = Env::base(rrow);
            let kv: Vec<Value> = rkeys
                .iter()
                .map(|k| eval(ctx, &env, k))
                .collect::<Result<_>>()?;
            if kv.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key_encode(&kv)).or_default().push(rrow);
        }
        for lrow in &left.rows {
            let env = Env::base(lrow);
            let kv: Vec<Value> = lkeys
                .iter()
                .map(|k| eval(ctx, &env, k))
                .collect::<Result<_>>()?;
            let mut matched = false;
            if !kv.iter().any(Value::is_null) {
                if let Some(cands) = table.get(&key_encode(&kv)) {
                    for rrow in cands {
                        let mut combined = lrow.clone();
                        combined.extend(rrow.iter().cloned());
                        let ok = match &residual_b {
                            Some(f) => truthy(&eval(ctx, &Env::base(&combined), f)?) == Some(true),
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out_rows.push(combined);
                        }
                    }
                }
            }
            if outer && !matched {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, rwidth));
                out_rows.push(combined);
            }
        }
    } else {
        // Nested loop.
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let ok = match &residual_b {
                    Some(f) => truthy(&eval(ctx, &Env::base(&combined), f)?) == Some(true),
                    None => true,
                };
                if ok {
                    matched = true;
                    out_rows.push(combined);
                }
            }
            if outer && !matched {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, rwidth));
                out_rows.push(combined);
            }
        }
    }
    Ok(Rel {
        cols,
        rows: out_rows,
    })
}

/// Split an OR tree into disjuncts.
fn split_disjuncts(e: &Expr) -> Vec<&Expr> {
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } = e
        {
            rec(left, out);
            rec(right, out);
        } else {
            out.push(e);
        }
    }
    let mut out = Vec::new();
    rec(e, &mut out);
    out
}

fn disjoin(mut list: Vec<Expr>) -> Expr {
    // The empty disjunction is vacuously false.
    let mut acc = match list.pop() {
        Some(e) => e,
        None => Expr::Literal(Value::Int(0)),
    };
    while let Some(e) = list.pop() {
        acc = Expr::Binary {
            op: BinOp::Or,
            left: Box::new(e),
            right: Box::new(acc),
        };
    }
    acc
}

/// OR-factorization: rewrite `(A AND X) OR (A AND Y)` into
/// `A AND (X OR Y)`. This is what lets TPC-H Q19's equi-join predicate
/// (buried inside each OR branch) surface as a hash-join edge instead of
/// forcing a cartesian product. Returns the replacement conjunct list.
fn factor_or_conjunct(e: &Expr) -> Vec<Expr> {
    if !matches!(e, Expr::Binary { op: BinOp::Or, .. }) {
        return vec![e.clone()];
    }
    let disjuncts = split_disjuncts(e);
    if disjuncts.len() < 2 {
        return vec![e.clone()];
    }
    let branch_conjs: Vec<Vec<&Expr>> = disjuncts.iter().map(|d| split_conjuncts(d)).collect();
    let branch_norms: Vec<Vec<Expr>> = branch_conjs
        .iter()
        .map(|cs| cs.iter().map(|c| normalize(c)).collect())
        .collect();

    // Conjuncts of the first branch present (structurally) in every branch.
    let mut common_idx: Vec<usize> = Vec::new();
    for (i, n) in branch_norms[0].iter().enumerate() {
        if branch_norms[1..].iter().all(|b| b.contains(n)) {
            common_idx.push(i);
        }
    }
    if common_idx.is_empty() {
        return vec![e.clone()];
    }
    let common_norms: Vec<&Expr> = common_idx.iter().map(|&i| &branch_norms[0][i]).collect();
    let mut out: Vec<Expr> = common_idx
        .iter()
        .map(|&i| branch_conjs[0][i].clone())
        .collect();

    // Each branch minus one occurrence of every common conjunct.
    let mut remainders: Vec<Expr> = Vec::new();
    let mut all_empty = true;
    for (cs, ns) in branch_conjs.iter().zip(&branch_norms) {
        let mut used = vec![false; cs.len()];
        for cn in &common_norms {
            if let Some(i) = ns
                .iter()
                .enumerate()
                .position(|(i, n)| !used[i] && n == *cn)
            {
                used[i] = true;
            }
        }
        let rest: Vec<Expr> = cs
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(c, _)| (*c).clone())
            .collect();
        if rest.is_empty() {
            // One branch is exactly the common part ⇒ OR is implied.
            continue;
        }
        all_empty = false;
        remainders.push(conjoin(rest));
    }
    if !all_empty && !remainders.is_empty() && remainders.len() == branch_conjs.len() {
        out.push(disjoin(remainders));
    }
    out
}

/// Which FROM units a conjunct references (by unit index); `None` if it
/// references something outside all units (outer scope) or a subquery.
fn conjunct_units(conj: &Expr, unit_bindings: &[Vec<BoundCol>]) -> Option<Vec<usize>> {
    let mut units = Vec::new();
    let mut external = false;
    let mut has_sub = false;
    conj.walk(&mut |e| match e {
        Expr::Column { table, name } => {
            let mut found = false;
            for (i, b) in unit_bindings.iter().enumerate() {
                if super::binding::resolve_col(&[b.as_slice()], table.as_deref(), name).is_ok() {
                    if !units.contains(&i) {
                        units.push(i);
                    }
                    found = true;
                    break;
                }
            }
            if !found {
                external = true;
            }
        }
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
            has_sub = true;
        }
        _ => {}
    });
    if external || has_sub {
        None
    } else {
        Some(units)
    }
}

// ---------------------------------------------------------------------------
// Full SELECT pipeline
// ---------------------------------------------------------------------------

/// Execute a SELECT and materialize the result.
///
/// `outer_scopes`/`outer_env` carry correlation context when this is a
/// subquery execution; both empty for top-level queries.
pub fn run_select_materialized(
    ctx: &ExecCtx,
    q: &SelectStmt,
    outer_scopes: &[Vec<BoundCol>],
    outer_env: Option<&Env<'_>>,
) -> Result<Rel> {
    // ---- FROM + WHERE: build the joined, filtered input relation ----
    let unit_bindings: Vec<Vec<BoundCol>> = q
        .from
        .iter()
        .map(|tr| {
            let mut b = Vec::new();
            table_ref_bindings(ctx, tr, &mut b)?;
            Ok(b)
        })
        .collect::<Result<_>>()?;

    // Conjuncts, with OR-factorization applied so equi-joins hidden in
    // disjunctions (e.g. Q19) still plan as hash joins.
    let factored: Vec<Expr> = q
        .filter
        .as_ref()
        .map(|f| {
            split_conjuncts(f)
                .into_iter()
                .flat_map(factor_or_conjunct)
                .collect()
        })
        .unwrap_or_default();
    let conjuncts: Vec<&Expr> = factored.iter().collect();

    // Classify conjuncts.
    let mut pushed: Vec<Vec<&Expr>> = vec![Vec::new(); q.from.len()];
    let mut const_conjs: Vec<&Expr> = Vec::new();
    let mut join_edges: Vec<(&Expr, usize, usize)> = Vec::new();
    let mut residual: Vec<&Expr> = Vec::new();
    for c in &conjuncts {
        match conjunct_units(c, &unit_bindings) {
            Some(units) if units.is_empty() => const_conjs.push(c),
            Some(units) if units.len() == 1 => pushed[units[0]].push(c),
            Some(units) if units.len() == 2 => {
                if matches!(c, Expr::Binary { op: BinOp::Eq, .. }) {
                    join_edges.push((c, units[0], units[1]));
                } else {
                    residual.push(c);
                }
            }
            _ => residual.push(c),
        }
    }

    // Constant predicates (e.g. the Phoenix `WHERE 0=1` probe): evaluate
    // before scanning anything.
    let full_bindings: Vec<BoundCol> = unit_bindings.iter().flatten().cloned().collect();
    for c in &const_conjs {
        let mut scopes = vec![Vec::<BoundCol>::new()];
        scopes.extend(outer_scopes.iter().cloned());
        let binder = Binder::new(ctx, scopes);
        let b = binder.bind(c)?;
        let empty_row: Row = Vec::new();
        let env = Env::child(&empty_row, outer_env);
        if truthy(&eval(ctx, &env, &b)?) != Some(true) {
            // Short-circuit: nothing can qualify; also skip scans.
            let out_schema = infer_output_schema(ctx, q)?;
            let cols = out_schema
                .into_iter()
                .map(|c| BoundCol::new(None, c.name, c.dtype))
                .collect();
            return Ok(Rel::empty(cols));
        }
    }

    // Evaluate units with pushdown.
    let mut rels: Vec<Option<Rel>> = q
        .from
        .iter()
        .zip(&pushed)
        .map(|(tr, p)| eval_table_ref(ctx, tr, p).map(Some))
        .collect::<Result<_>>()?;

    // Greedy join order: start from the smallest relation.
    let n = rels.len();
    let mut current: Rel;
    let mut joined_units: Vec<usize> = Vec::new();
    if n == 0 {
        current = Rel {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        };
    } else {
        let start = (0..n)
            .min_by_key(|&i| rels[i].as_ref().map_or(0, |r| r.rows.len()))
            .unwrap_or(0);
        current = rels[start]
            .take()
            .ok_or_else(|| Error::Storage("join planner lost its starting relation".into()))?;
        joined_units.push(start);
        while joined_units.len() < n {
            // Prefer a unit connected by an equi-edge.
            let next = (0..n)
                .filter(|i| rels[*i].is_some())
                .find(|&i| {
                    join_edges.iter().any(|(_, a, b)| {
                        (joined_units.contains(a) && *b == i)
                            || (joined_units.contains(b) && *a == i)
                    })
                })
                .or_else(|| {
                    (0..n)
                        .filter(|i| rels[*i].is_some())
                        .min_by_key(|&i| rels[i].as_ref().map_or(usize::MAX, |r| r.rows.len()))
                });
            let Some(next) = next else { break };
            let Some(right) = rels[next].take() else {
                break;
            };
            // Collect all edges now satisfied (between joined set+next).
            let mut on_parts: Vec<Expr> = Vec::new();
            join_edges.retain(|(c, a, b)| {
                let usable = (joined_units.contains(a) && *b == next)
                    || (joined_units.contains(b) && *a == next);
                if usable {
                    on_parts.push((*c).clone());
                }
                !usable
            });
            current = if on_parts.is_empty() {
                // Cartesian.
                join_on(ctx, current, right, &Expr::Literal(Value::Int(1)), false)?
            } else {
                join_on(ctx, current, right, &conjoin(on_parts), false)?
            };
            joined_units.push(next);
        }
        // Edges that connected units in arbitrary order but were not
        // consumed become residual filters.
        for (c, _, _) in join_edges {
            residual.push(c);
        }
    }

    // Column order must match `relation_bindings` (wildcard contract):
    // re-project to FROM order if the greedy join permuted units.
    if joined_units.len() > 1 && joined_units.windows(2).any(|w| w[0] > w[1]) {
        let mut perm: Vec<usize> = Vec::with_capacity(full_bindings.len());
        // Offsets of each unit inside `current`.
        let mut unit_offset_in_current: Vec<usize> = vec![0; n];
        let mut acc = 0;
        for &u in &joined_units {
            unit_offset_in_current[u] = acc;
            acc += unit_bindings[u].len();
        }
        for (u, b) in unit_bindings.iter().enumerate() {
            let off = unit_offset_in_current[u];
            for k in 0..b.len() {
                perm.push(off + k);
            }
        }
        current = Rel {
            cols: full_bindings.clone(),
            rows: current
                .rows
                .into_iter()
                .map(|r| perm.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        };
    } else if n > 0 {
        current.cols = full_bindings.clone();
    }

    // Residual filter (may be correlated → bind with outer scopes).
    if !residual.is_empty() {
        let mut scopes = vec![current.cols.clone()];
        scopes.extend(outer_scopes.iter().cloned());
        let binder = Binder::new(ctx, scopes);
        let f = binder.bind(&conjoin(residual.iter().map(|e| (*e).clone()).collect()))?;
        let mut kept = Vec::with_capacity(current.rows.len());
        for row in current.rows.drain(..) {
            let env = Env::child(&row, outer_env);
            if truthy(&eval(ctx, &env, &f)?) == Some(true) {
                kept.push(row);
            }
        }
        current.rows = kept;
    }

    // ---- Aggregation / projection / order / distinct / top ----
    project_and_finish(ctx, q, current, outer_scopes, outer_env)
}

/// Everything after the joined+filtered input relation.
fn project_and_finish(
    ctx: &ExecCtx,
    q: &SelectStmt,
    input: Rel,
    outer_scopes: &[Vec<BoundCol>],
    outer_env: Option<&Env<'_>>,
) -> Result<Rel> {
    let mut scopes = vec![input.cols.clone()];
    scopes.extend(outer_scopes.iter().cloned());
    let binder = Binder::new(ctx, scopes.clone());

    let has_aggs = !q.group_by.is_empty()
        || q.items
            .iter()
            .any(|it| matches!(it, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || q.having
            .as_ref()
            .map(|h| h.contains_aggregate())
            .unwrap_or(false);

    // Resolve ORDER BY aliases / ordinals into plain expressions.
    let order_exprs: Vec<(Expr, bool)> = q
        .order_by
        .iter()
        .map(|OrderItem { expr, desc }| (resolve_order_expr(q, expr), *desc))
        .collect();

    // Output item expressions (wildcards expanded).
    enum OutItem {
        Passthrough(usize),
        Computed { expr: Expr, name: String },
    }
    let mut out_items: Vec<OutItem> = Vec::new();
    for (i, it) in q.items.iter().enumerate() {
        match it {
            SelectItem::Wildcard => {
                for k in 0..input.cols.len() {
                    out_items.push(OutItem::Passthrough(k));
                }
            }
            SelectItem::QualifiedWildcard(qual) => {
                for (k, c) in input.cols.iter().enumerate() {
                    if c.qual
                        .as_deref()
                        .map(|x| x.eq_ignore_ascii_case(qual))
                        .unwrap_or(false)
                    {
                        out_items.push(OutItem::Passthrough(k));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => out_items.push(OutItem::Computed {
                expr: expr.clone(),
                name: alias.clone().unwrap_or_else(|| default_name(expr, i)),
            }),
        }
    }

    // Build bound output + order + having expressions, in aggregate mode
    // when required.
    let agg_ctx_opt: Option<AggContext>;
    let bound_out: Vec<(BExpr, String)>;
    let bound_order: Vec<(BExpr, bool)>;
    let bound_having: Option<BExpr>;
    // Rows to project: either raw rows, or (rep row, keys, agg values).
    struct GroupOut {
        rep: Row,
        keys: Vec<Value>,
        aggs: Vec<Value>,
    }
    let groups_out: Vec<GroupOut>;

    if has_aggs {
        let mut aggs: Vec<AggCall> = Vec::new();
        for it in &out_items {
            if let OutItem::Computed { expr, .. } = it {
                binder.collect_aggs(expr, &mut aggs)?;
            }
        }
        if let Some(h) = &q.having {
            binder.collect_aggs(h, &mut aggs)?;
        }
        for (e, _) in &order_exprs {
            binder.collect_aggs(e, &mut aggs)?;
        }
        let group_bound: Vec<BExpr> = q
            .group_by
            .iter()
            .map(|g| binder.bind(g))
            .collect::<Result<_>>()?;
        let agg_ctx = AggContext {
            group_exprs: q.group_by.iter().map(normalize).collect(),
            key_types: group_bound.iter().map(|b| b.dtype()).collect(),
            aggs,
        };

        // Accumulate.
        struct GroupAcc {
            rep: Row,
            keys: Vec<Value>,
            accs: Vec<Accumulator>,
        }
        let mut groups: HashMap<Vec<u8>, GroupAcc> = HashMap::new();
        let mut order: Vec<Vec<u8>> = Vec::new();
        for row in &input.rows {
            let env = Env::child(row, outer_env);
            let keys: Vec<Value> = group_bound
                .iter()
                .map(|g| eval(ctx, &env, g))
                .collect::<Result<_>>()?;
            let gk = key_encode(&keys);
            let entry = groups.entry(gk.clone()).or_insert_with(|| {
                order.push(gk);
                GroupAcc {
                    rep: row.clone(),
                    keys,
                    accs: agg_ctx.aggs.iter().map(Accumulator::new).collect(),
                }
            });
            for (acc, call) in entry.accs.iter_mut().zip(&agg_ctx.aggs) {
                let v = match &call.arg {
                    Some(a) => eval(ctx, &env, a)?,
                    None => Value::Int(1),
                };
                acc.add(v);
            }
        }
        // Scalar aggregate over empty input still yields one row.
        if groups.is_empty() && q.group_by.is_empty() {
            let gk = Vec::new();
            order.push(gk.clone());
            groups.insert(
                gk,
                GroupAcc {
                    rep: vec![Value::Null; input.cols.len()],
                    keys: Vec::new(),
                    accs: agg_ctx.aggs.iter().map(Accumulator::new).collect(),
                },
            );
        }
        // `order` holds each group key exactly once, in first-seen order,
        // so draining `groups` through it visits every accumulator.
        groups_out = order
            .into_iter()
            .filter_map(|gk| groups.remove(&gk))
            .map(|g| GroupOut {
                rep: g.rep,
                keys: g.keys,
                aggs: g.accs.into_iter().map(Accumulator::finish).collect(),
            })
            .collect();

        let agg_binder = Binder {
            ctx,
            scopes: scopes.clone(),
            agg_ctx: Some(&agg_ctx),
        };
        bound_out = out_items
            .iter()
            .map(|it| match it {
                OutItem::Passthrough(k) => Err(Error::Semantic(format!(
                    "column '{}' must appear in GROUP BY",
                    input.cols[*k].name
                ))),
                OutItem::Computed { expr, name } => Ok((agg_binder.bind(expr)?, name.clone())),
            })
            .collect::<Result<_>>()?;
        bound_order = order_exprs
            .iter()
            .map(|(e, d)| Ok((agg_binder.bind(e)?, *d)))
            .collect::<Result<_>>()?;
        bound_having = q.having.as_ref().map(|h| agg_binder.bind(h)).transpose()?;
        agg_ctx_opt = Some(agg_ctx);
    } else {
        groups_out = input
            .rows
            .iter()
            .map(|r| GroupOut {
                rep: r.clone(),
                keys: Vec::new(),
                aggs: Vec::new(),
            })
            .collect();
        bound_out = out_items
            .iter()
            .map(|it| match it {
                OutItem::Passthrough(k) => Ok((
                    BExpr::Col {
                        depth: 0,
                        idx: *k,
                        dtype: input.cols[*k].dtype,
                    },
                    input.cols[*k].name.clone(),
                )),
                OutItem::Computed { expr, name } => Ok((binder.bind(expr)?, name.clone())),
            })
            .collect::<Result<_>>()?;
        bound_order = order_exprs
            .iter()
            .map(|(e, d)| Ok((binder.bind(e)?, *d)))
            .collect::<Result<_>>()?;
        bound_having = q.having.as_ref().map(|h| binder.bind(h)).transpose()?;
        agg_ctx_opt = None;
    }
    let _ = &agg_ctx_opt;

    // Project (+ order keys), applying HAVING.
    let mut projected: Vec<(Row, Vec<Value>)> = Vec::with_capacity(groups_out.len());
    for g in &groups_out {
        let env = Env {
            row: &g.rep,
            agg: if has_aggs {
                Some((g.keys.as_slice(), g.aggs.as_slice()))
            } else {
                None
            },
            parent: outer_env,
        };
        if let Some(h) = &bound_having {
            if truthy(&eval(ctx, &env, h)?) != Some(true) {
                continue;
            }
        }
        let row: Row = bound_out
            .iter()
            .map(|(e, _)| eval(ctx, &env, e))
            .collect::<Result<_>>()?;
        let okeys: Vec<Value> = bound_order
            .iter()
            .map(|(e, _)| eval(ctx, &env, e))
            .collect::<Result<_>>()?;
        projected.push((row, okeys));
    }

    // DISTINCT.
    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        projected.retain(|(row, _)| seen.insert(key_encode(row)));
    }

    // ORDER BY.
    if !bound_order.is_empty() {
        projected.sort_by(|(_, a), (_, b)| {
            for (i, (_, desc)) in bound_order.iter().enumerate() {
                let c = a[i].total_cmp(&b[i]);
                let c = if *desc { c.reverse() } else { c };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // TOP.
    if let Some(t) = q.top {
        projected.truncate(t as usize);
    }

    let cols: Vec<BoundCol> = bound_out
        .iter()
        .map(|(e, name)| BoundCol::new(None, name.clone(), e.dtype()))
        .collect();
    Ok(Rel {
        cols,
        rows: projected.into_iter().map(|(r, _)| r).collect(),
    })
}

/// ORDER BY may reference a select alias or an ordinal position.
fn resolve_order_expr(q: &SelectStmt, e: &Expr) -> Expr {
    match e {
        Expr::Literal(Value::Int(n)) if *n >= 1 => {
            // Ordinal.
            let mut idx = *n as usize;
            for it in &q.items {
                if let SelectItem::Expr { expr, .. } = it {
                    idx -= 1;
                    if idx == 0 {
                        return expr.clone();
                    }
                }
            }
            e.clone()
        }
        Expr::Column { table: None, name } => {
            for it in &q.items {
                if let SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } = it
                {
                    if a.eq_ignore_ascii_case(name) {
                        return expr.clone();
                    }
                }
            }
            e.clone()
        }
        _ => e.clone(),
    }
}
