//! Name resolution: turning AST expressions into bound expressions with
//! column indexes resolved against relation scopes, plus static type
//! inference (which powers the `WHERE 0=1` metadata-only path Phoenix
//! relies on).

#![allow(missing_docs)] // executor-internal IR: names mirror the AST

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::sql::ast::{is_aggregate_name, BinOp, Expr, SelectStmt};
use crate::types::{DataType, Value};

/// One output column of a relation, with its provenance qualifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundCol {
    /// Table alias (or name) this column came from; `None` for computed.
    pub qual: Option<String>,
    pub name: String,
    pub dtype: DataType,
}

impl BoundCol {
    pub fn new(qual: Option<String>, name: impl Into<String>, dtype: DataType) -> Self {
        BoundCol {
            qual,
            name: name.into(),
            dtype,
        }
    }
}

/// A stack of visible scopes; `scopes[0]` is innermost.
pub type Scopes<'a> = [&'a [BoundCol]];

/// Resolve a column reference to (scope depth, column index).
pub fn resolve_col(
    scopes: &Scopes<'_>,
    table: Option<&str>,
    name: &str,
) -> Result<(usize, usize, DataType)> {
    for (depth, scope) in scopes.iter().enumerate() {
        let mut matches = scope.iter().enumerate().filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match table {
                    Some(t) => c
                        .qual
                        .as_deref()
                        .map(|q| q.eq_ignore_ascii_case(t))
                        .unwrap_or(false),
                    None => true,
                }
        });
        if let Some((idx, col)) = matches.next() {
            if matches.next().is_some() {
                return Err(Error::Semantic(format!("ambiguous column '{name}'")));
            }
            return Ok((depth, idx, col.dtype));
        }
    }
    Err(Error::Semantic(format!(
        "unknown column '{}{}'",
        table.map(|t| format!("{t}.")).unwrap_or_default(),
        name
    )))
}

/// Scalar (non-aggregate) builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    Year,
    Substring,
    Upper,
    Lower,
    Abs,
    Round,
}

impl FuncKind {
    pub fn from_name(name: &str) -> Option<FuncKind> {
        Some(match name.to_ascii_uppercase().as_str() {
            "YEAR" => FuncKind::Year,
            "SUBSTRING" | "SUBSTR" => FuncKind::Substring,
            "UPPER" => FuncKind::Upper,
            "LOWER" => FuncKind::Lower,
            "ABS" => FuncKind::Abs,
            "ROUND" => FuncKind::Round,
            _ => return None,
        })
    }

    pub fn result_type(self, args: &[BExpr]) -> DataType {
        match self {
            FuncKind::Year => DataType::Int,
            FuncKind::Substring | FuncKind::Upper | FuncKind::Lower => DataType::Str,
            FuncKind::Abs | FuncKind::Round => {
                args.first().map(|a| a.dtype()).unwrap_or(DataType::Float)
            }
        }
    }
}

/// Aggregate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
}

/// A collected aggregate call: kind + bound argument.
#[derive(Debug, Clone)]
pub struct AggCall {
    pub kind: AggKind,
    pub arg: Option<BExpr>,
    pub distinct: bool,
    /// The original AST for structural matching.
    pub source: Expr,
}

impl AggCall {
    pub fn result_type(&self) -> DataType {
        match self.kind {
            AggKind::Count | AggKind::CountStar => DataType::Int,
            AggKind::Avg => DataType::Float,
            AggKind::Sum => match self.arg.as_ref().map(|a| a.dtype()) {
                Some(DataType::Int) => DataType::Int,
                _ => DataType::Float,
            },
            AggKind::Min | AggKind::Max => self
                .arg
                .as_ref()
                .map(|a| a.dtype())
                .unwrap_or(DataType::Float),
        }
    }
}

pub use super::eval::{SubKind, SubPlan, SubStrategy};

/// A bound expression.
#[derive(Debug, Clone)]
pub enum BExpr {
    Literal(Value),
    Col {
        depth: usize,
        idx: usize,
        dtype: DataType,
    },
    Neg(Box<BExpr>),
    Not(Box<BExpr>),
    Binary {
        op: BinOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
    Like {
        expr: Box<BExpr>,
        pattern: Box<BExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<BExpr>,
        negated: bool,
    },
    Between {
        expr: Box<BExpr>,
        low: Box<BExpr>,
        high: Box<BExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BExpr>,
        list: Vec<BExpr>,
        negated: bool,
    },
    InSub {
        expr: Box<BExpr>,
        plan: Arc<SubPlan>,
        negated: bool,
    },
    Exists {
        plan: Arc<SubPlan>,
        negated: bool,
    },
    Scalar {
        plan: Arc<SubPlan>,
    },
    Case {
        branches: Vec<(BExpr, BExpr)>,
        else_expr: Option<Box<BExpr>>,
        dtype: DataType,
    },
    Func {
        func: FuncKind,
        args: Vec<BExpr>,
    },
    /// Reference to computed aggregate `i` (aggregate output phase only).
    AggRef {
        idx: usize,
        dtype: DataType,
    },
    /// Reference to group-key value `i` (aggregate output phase only).
    GroupRef {
        idx: usize,
        dtype: DataType,
    },
}

impl BExpr {
    /// Static result type.
    pub fn dtype(&self) -> DataType {
        match self {
            BExpr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
            BExpr::Col { dtype, .. } => *dtype,
            BExpr::Neg(e) => e.dtype(),
            BExpr::Not(_) => DataType::Int,
            BExpr::Binary { op, left, right } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    DataType::Int
                } else {
                    match (left.dtype(), right.dtype()) {
                        (DataType::Int, DataType::Int) => DataType::Int,
                        (DataType::Date, DataType::Int) | (DataType::Int, DataType::Date) => {
                            DataType::Date
                        }
                        _ => DataType::Float,
                    }
                }
            }
            BExpr::Like { .. }
            | BExpr::IsNull { .. }
            | BExpr::Between { .. }
            | BExpr::InList { .. }
            | BExpr::InSub { .. }
            | BExpr::Exists { .. } => DataType::Int,
            BExpr::Scalar { plan } => infer_select_types(&plan.query)
                .first()
                .copied()
                .unwrap_or(DataType::Float),
            BExpr::Case { dtype, .. } => *dtype,
            BExpr::Func { func, args } => func.result_type(args),
            BExpr::AggRef { dtype, .. } | BExpr::GroupRef { dtype, .. } => *dtype,
        }
    }

    /// Max scope depth referenced (0 = only innermost). Subquery plans
    /// track their own outer references; `Col` nodes here are what matter.
    pub fn max_depth(&self) -> usize {
        let mut m = 0;
        self.walk(&mut |e| {
            if let BExpr::Col { depth, .. } = e {
                m = m.max(*depth);
            }
        });
        m
    }

    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a BExpr)) {
        f(self);
        match self {
            BExpr::Neg(e) | BExpr::Not(e) => e.walk(f),
            BExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            BExpr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            BExpr::IsNull { expr, .. } => expr.walk(f),
            BExpr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            BExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            BExpr::InSub { expr, .. } => expr.walk(f),
            BExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                for (c, r) in branches {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            BExpr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Shift every column reference's depth by `delta` (used when an
    /// expression bound in outer scopes is evaluated from a deeper env).
    pub fn shift_depth(&mut self, delta: isize) {
        match self {
            BExpr::Col { depth, .. } => {
                *depth = (*depth as isize + delta).max(0) as usize;
            }
            BExpr::Neg(e) | BExpr::Not(e) => e.shift_depth(delta),
            BExpr::Binary { left, right, .. } => {
                left.shift_depth(delta);
                right.shift_depth(delta);
            }
            BExpr::Like { expr, pattern, .. } => {
                expr.shift_depth(delta);
                pattern.shift_depth(delta);
            }
            BExpr::IsNull { expr, .. } => expr.shift_depth(delta),
            BExpr::Between {
                expr, low, high, ..
            } => {
                expr.shift_depth(delta);
                low.shift_depth(delta);
                high.shift_depth(delta);
            }
            BExpr::InList { expr, list, .. } => {
                expr.shift_depth(delta);
                for e in list {
                    e.shift_depth(delta);
                }
            }
            BExpr::InSub { expr, .. } => expr.shift_depth(delta),
            BExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                for (c, r) in branches {
                    c.shift_depth(delta);
                    r.shift_depth(delta);
                }
                if let Some(e) = else_expr {
                    e.shift_depth(delta);
                }
            }
            BExpr::Func { args, .. } => {
                for a in args {
                    a.shift_depth(delta);
                }
            }
            _ => {}
        }
    }
}

/// Best-effort static inference of a subquery's output column types used
/// for `Scalar.dtype()` before execution. Falls back to Float.
fn infer_select_types(q: &SelectStmt) -> Vec<DataType> {
    use crate::sql::ast::SelectItem;
    q.items
        .iter()
        .map(|it| match it {
            SelectItem::Expr { expr, .. } => rough_type(expr),
            _ => DataType::Float,
        })
        .collect()
}

fn rough_type(e: &Expr) -> DataType {
    match e {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Func { name, args, .. } => match name.to_ascii_uppercase().as_str() {
            "COUNT" => DataType::Int,
            "SUM" | "AVG" => DataType::Float,
            "MIN" | "MAX" => args.first().map(rough_type).unwrap_or(DataType::Float),
            "YEAR" => DataType::Int,
            "SUBSTRING" | "SUBSTR" | "UPPER" | "LOWER" => DataType::Str,
            _ => DataType::Float,
        },
        Expr::Binary { op, left, .. } if !op.is_comparison() => rough_type(left),
        Expr::Case { branches, .. } => branches
            .first()
            .map(|(_, r)| rough_type(r))
            .unwrap_or(DataType::Float),
        _ => DataType::Float,
    }
}

/// Parse an aggregate `Func` AST node into an [`AggKind`].
pub fn agg_kind(name: &str, star: bool) -> Option<AggKind> {
    if !is_aggregate_name(name) {
        return None;
    }
    Some(match name.to_ascii_uppercase().as_str() {
        "COUNT" if star => AggKind::CountStar,
        "COUNT" => AggKind::Count,
        "SUM" => AggKind::Sum,
        "AVG" => AggKind::Avg,
        "MIN" => AggKind::Min,
        "MAX" => AggKind::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<BoundCol> {
        vec![
            BoundCol::new(Some("t".into()), "a", DataType::Int),
            BoundCol::new(Some("t".into()), "b", DataType::Str),
            BoundCol::new(Some("u".into()), "a", DataType::Float),
        ]
    }

    #[test]
    fn unqualified_unique_resolves() {
        let c = cols();
        let scopes: Vec<&[BoundCol]> = vec![&c];
        let (d, i, t) = resolve_col(&scopes, None, "b").unwrap();
        assert_eq!((d, i, t), (0, 1, DataType::Str));
    }

    #[test]
    fn unqualified_ambiguous_errors() {
        let c = cols();
        let scopes: Vec<&[BoundCol]> = vec![&c];
        assert!(matches!(
            resolve_col(&scopes, None, "a"),
            Err(Error::Semantic(_))
        ));
    }

    #[test]
    fn qualified_resolves() {
        let c = cols();
        let scopes: Vec<&[BoundCol]> = vec![&c];
        let (_, i, t) = resolve_col(&scopes, Some("U"), "A").unwrap();
        assert_eq!((i, t), (2, DataType::Float));
    }

    #[test]
    fn outer_scope_resolution() {
        let inner = vec![BoundCol::new(Some("l".into()), "x", DataType::Int)];
        let outer = cols();
        let scopes: Vec<&[BoundCol]> = vec![&inner, &outer];
        let (d, i, _) = resolve_col(&scopes, Some("t"), "b").unwrap();
        assert_eq!((d, i), (1, 1));
    }

    #[test]
    fn missing_column_errors() {
        let c = cols();
        let scopes: Vec<&[BoundCol]> = vec![&c];
        assert!(resolve_col(&scopes, None, "zzz").is_err());
    }

    #[test]
    fn func_kinds() {
        assert_eq!(FuncKind::from_name("year"), Some(FuncKind::Year));
        assert_eq!(FuncKind::from_name("SUBSTR"), Some(FuncKind::Substring));
        assert_eq!(FuncKind::from_name("nope"), None);
    }

    #[test]
    fn agg_kinds() {
        assert_eq!(agg_kind("count", true), Some(AggKind::CountStar));
        assert_eq!(agg_kind("Count", false), Some(AggKind::Count));
        assert_eq!(agg_kind("sum", false), Some(AggKind::Sum));
        assert_eq!(agg_kind("year", false), None);
    }

    #[test]
    fn shift_depth_works() {
        let mut e = BExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(BExpr::Col {
                depth: 1,
                idx: 0,
                dtype: DataType::Int,
            }),
            right: Box::new(BExpr::Literal(Value::Int(1))),
        };
        e.shift_depth(-1);
        assert_eq!(e.max_depth(), 0);
    }
}
