//! Statement execution: DML, DDL, stored procedures, and the SELECT entry
//! points (lazy pipeline for simple scans so results can stream into the
//! server's bounded output buffer; materialized pipeline for everything
//! else).

pub mod binding;
pub mod eval;
pub mod select;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::catalog::TableMeta;
use crate::error::{Error, Result};
use crate::schema::{Column, TableSchema};
use crate::sql::ast::{InsertSource, SelectItem, Stmt, TableName, TableRef};
use crate::sql::parser::{parse_one, parse_statements};
use crate::storage::Storage;
use crate::txn::locks::LockMode;
use crate::txn::TxnHandle;
use crate::types::{DataType, Row, Value};
use binding::{BExpr, BoundCol};
use eval::{eval, truthy, Binder, Env};
use select::{infer_output_schema, run_select_materialized};

/// Session-local temp tables: volatile, die with the session (the property
/// Phoenix's post-crash liveness probe relies on).
#[derive(Default)]
pub struct TempTables {
    /// Tables keyed by lowercased name (without the `#`).
    pub tables: HashMap<String, TempTable>,
}

/// One session-local temp table.
pub struct TempTable {
    /// Declared schema.
    pub schema: TableSchema,
    /// Row storage (no paging/WAL — temp tables are volatile by design).
    pub rows: Vec<Row>,
}

impl TempTables {
    /// Approximate resident bytes across every temp table — the engine's
    /// contribution to a session's memory-budget charge in the server's
    /// admission controller. An accounting estimate (fixed widths plus
    /// string payloads), not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (name, t) in &self.tables {
            total += 64 + name.len() as u64;
            for row in &t.rows {
                for v in row {
                    total += match v {
                        Value::Str(s) => 24 + s.len() as u64,
                        _ => 8,
                    };
                }
            }
        }
        total
    }
}

/// Either a catalog table or a session temp table, resolved for reading.
#[allow(missing_docs)]
pub enum TableSource {
    /// A durable catalog table.
    Base {
        meta: Arc<RwLock<TableMeta>>,
        schema: TableSchema,
    },
    /// A snapshot of a session temp table.
    Temp { schema: TableSchema, rows: Vec<Row> },
}

impl TableSource {
    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        match self {
            TableSource::Base { schema, .. } => schema,
            TableSource::Temp { schema, .. } => schema,
        }
    }
}

/// Execution context for one statement.
#[derive(Clone)]
pub struct ExecCtx {
    /// The storage kernel.
    pub storage: Arc<Storage>,
    /// The executing transaction.
    pub txn: Arc<TxnHandle>,
    /// The session's temp tables.
    pub temps: Arc<Mutex<TempTables>>,
    /// Procedure parameters (lowercased names).
    pub params: Arc<HashMap<String, Value>>,
    /// Procedure call depth (recursion guard).
    pub depth: u32,
}

impl ExecCtx {
    /// Resolve a (possibly temp) table name for reading.
    pub fn resolve_table(&self, t: &TableName) -> Result<TableSource> {
        if t.temp {
            let temps = self.temps.lock();
            let tt = temps
                .tables
                .get(&t.name.to_ascii_lowercase())
                .ok_or_else(|| Error::NotFound(format!("temp table #{}", t.name)))?;
            Ok(TableSource::Temp {
                schema: tt.schema.clone(),
                rows: tt.rows.clone(),
            })
        } else {
            let meta = self
                .storage
                .catalog
                .resolve(&t.name)
                .ok_or_else(|| Error::NotFound(format!("table {}", t.name)))?;
            let schema = meta.read().schema.clone();
            Ok(TableSource::Base { meta, schema })
        }
    }
}

/// Result rows: lazily streamed or fully materialized.
#[allow(missing_docs)]
pub enum RowsSource {
    /// Fully computed rows.
    Materialized(std::vec::IntoIter<Row>),
    /// Rows produced on demand (simple scans).
    Lazy(Box<dyn Iterator<Item = Result<Row>> + Send>),
}

/// A result set with its schema.
pub struct Rows {
    /// Output column names and types.
    pub schema: Vec<Column>,
    /// Row stream.
    pub source: RowsSource,
}

impl Iterator for Rows {
    type Item = Result<Row>;
    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.source {
            RowsSource::Materialized(it) => it.next().map(Ok),
            RowsSource::Lazy(it) => it.next(),
        }
    }
}

/// Statement outcome at the executor level.
#[allow(missing_docs)]
pub enum StmtOutcome {
    /// A result set.
    Rows(Rows),
    /// DML row count.
    Affected(u64),
    /// DDL / control success.
    Ok,
    /// Bubbles up to the server, which crashes or stops the engine.
    Shutdown { nowait: bool },
}

/// Execute one parsed statement. Transaction control (`BEGIN`/`COMMIT`/
/// `ROLLBACK`) is handled by the engine layer, not here.
pub fn execute_stmt(ctx: &ExecCtx, stmt: &Stmt) -> Result<StmtOutcome> {
    match stmt {
        Stmt::Select(q) => Ok(StmtOutcome::Rows(execute_select(ctx, q)?)),
        Stmt::Insert {
            table,
            columns,
            source,
        } => exec_insert(ctx, table, columns.as_deref(), source),
        Stmt::Update {
            table,
            sets,
            filter,
        } => exec_update(ctx, table, sets, filter.as_ref()),
        Stmt::Delete { table, filter } => exec_delete(ctx, table, filter.as_ref()),
        Stmt::CreateTable {
            table,
            columns,
            primary_key,
        } => exec_create_table(ctx, table, columns, primary_key),
        Stmt::DropTable { table, if_exists } => exec_drop_table(ctx, table, *if_exists),
        Stmt::CreateProc {
            name,
            params,
            body,
            or_replace,
        } => {
            let text = render_proc_text(name, params, body);
            ctx.storage.create_proc(name, &text, *or_replace)?;
            Ok(StmtOutcome::Ok)
        }
        Stmt::DropProc { name } => {
            ctx.storage.drop_proc(name)?;
            Ok(StmtOutcome::Ok)
        }
        Stmt::Exec { name, args } => exec_procedure(ctx, name, args),
        Stmt::Checkpoint => {
            ctx.storage.checkpoint()?;
            Ok(StmtOutcome::Ok)
        }
        Stmt::Shutdown { nowait } => Ok(StmtOutcome::Shutdown { nowait: *nowait }),
        Stmt::Begin | Stmt::Commit | Stmt::Rollback => Err(Error::Internal(
            "transaction control must be handled by the engine".into(),
        )),
    }
}

/// Canonical self-describing stored-procedure text (what the catalog and
/// WAL persist; re-parsed at EXEC time).
fn render_proc_text(name: &str, params: &[(String, DataType)], body: &str) -> String {
    let plist = params
        .iter()
        .map(|(n, t)| format!("@{n} {t}"))
        .collect::<Vec<_>>()
        .join(", ");
    if params.is_empty() {
        format!("CREATE PROCEDURE {name} AS {body}")
    } else {
        format!("CREATE PROCEDURE {name} ({plist}) AS {body}")
    }
}

// ---------------------------------------------------------------------------
// SELECT entry
// ---------------------------------------------------------------------------

/// Execute a SELECT: lazy streaming pipeline when the shape allows it,
/// otherwise the materializing pipeline.
pub fn execute_select(ctx: &ExecCtx, q: &crate::sql::ast::SelectStmt) -> Result<Rows> {
    if let Some(rows) = try_lazy_select(ctx, q)? {
        return Ok(rows);
    }
    let rel = run_select_materialized(ctx, q, &[], None)?;
    let schema = rel
        .cols
        .iter()
        .map(|c| Column::new(c.name.clone(), c.dtype))
        .collect();
    Ok(Rows {
        schema,
        source: RowsSource::Materialized(rel.rows.into_iter()),
    })
}

/// Lazy pipeline: single base table, no grouping/ordering/distinct, no
/// subqueries. Produces rows on demand so a `TOP N` scan into a full
/// network buffer suspends exactly as the paper describes.
fn try_lazy_select(ctx: &ExecCtx, q: &crate::sql::ast::SelectStmt) -> Result<Option<Rows>> {
    if q.from.len() != 1
        || !q.group_by.is_empty()
        || q.having.is_some()
        || !q.order_by.is_empty()
        || q.distinct
    {
        return Ok(None);
    }
    let TableRef::Table { table, alias } = &q.from[0] else {
        return Ok(None);
    };
    if table.temp {
        return Ok(None);
    }
    // No aggregates or subqueries anywhere.
    let mut blocked = false;
    let mut check = |e: &crate::sql::ast::Expr| {
        if e.contains_aggregate() {
            blocked = true;
        }
        e.walk(&mut |n| {
            use crate::sql::ast::Expr as E;
            if matches!(
                n,
                E::Exists { .. } | E::InSubquery { .. } | E::ScalarSubquery(_)
            ) {
                blocked = true;
            }
        });
    };
    for it in &q.items {
        if let SelectItem::Expr { expr, .. } = it {
            check(expr);
        }
    }
    if let Some(f) = &q.filter {
        check(f);
    }
    if blocked {
        return Ok(None);
    }

    let src = ctx.resolve_table(table)?;
    let TableSource::Base { meta, schema } = src else {
        return Ok(None);
    };
    // Primary-key point queries go through the materialized path, which
    // uses the PK index under IS + a row S lock instead of a full scan
    // under a table S lock.
    if !schema.primary_key.is_empty() {
        let conjuncts: Vec<&crate::sql::ast::Expr> = q
            .filter
            .as_ref()
            .map(eval::split_conjuncts)
            .unwrap_or_default();
        if select::pk_probe(ctx, &schema, &conjuncts)?.is_some() {
            return Ok(None);
        }
    }
    let table_id = meta.read().id;
    ctx.storage
        .lock_table(&ctx.txn, table_id, LockMode::Shared)?;

    let qual = alias.clone().unwrap_or_else(|| table.name.clone());
    let cols: Vec<BoundCol> = schema
        .columns
        .iter()
        .map(|c| BoundCol::new(Some(qual.clone()), c.name.clone(), c.dtype))
        .collect();
    let binder = Binder::new(ctx, vec![cols.clone()]);
    let filter = q.filter.as_ref().map(|f| binder.bind(f)).transpose()?;

    // Output items.
    let mut out: Vec<(BExpr, String)> = Vec::new();
    for (i, it) in q.items.iter().enumerate() {
        match it {
            SelectItem::Wildcard => {
                for (k, c) in cols.iter().enumerate() {
                    out.push((
                        BExpr::Col {
                            depth: 0,
                            idx: k,
                            dtype: c.dtype,
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(qw) => {
                for (k, c) in cols.iter().enumerate() {
                    if c.qual
                        .as_deref()
                        .map(|x| x.eq_ignore_ascii_case(qw))
                        .unwrap_or(false)
                    {
                        out.push((
                            BExpr::Col {
                                depth: 0,
                                idx: k,
                                dtype: c.dtype,
                            },
                            c.name.clone(),
                        ));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let b = binder.bind(expr)?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    crate::sql::ast::Expr::Column { name, .. } => name.clone(),
                    _ => format!("col{}", i + 1),
                });
                out.push((b, name));
            }
        }
    }
    let out_schema: Vec<Column> = out
        .iter()
        .map(|(e, n)| Column::new(n.clone(), e.dtype()))
        .collect();

    let mut scan = ctx.storage.scan(table_id)?;
    // The iterator owns clones of everything it needs. `Storage` is kept
    // alive through the context clone. `from_fn` (rather than filter_map)
    // so a satisfied TOP-N stops the scan instead of draining the table.
    let ctx2 = ctx.clone();
    let top = q.top;
    let mut produced: u64 = 0;
    let mut failed = false;
    let iter = std::iter::from_fn(move || {
        if failed {
            return None;
        }
        if let Some(t) = top {
            if produced >= t {
                return None;
            }
        }
        loop {
            let row = match scan.next()? {
                Ok((_, r)) => r,
                Err(e) => {
                    failed = true;
                    return Some(Err(e));
                }
            };
            let env = Env::base(&row);
            if let Some(f) = &filter {
                match eval(&ctx2, &env, f) {
                    Ok(v) => {
                        if truthy(&v) != Some(true) {
                            continue;
                        }
                    }
                    Err(e) => {
                        failed = true;
                        return Some(Err(e));
                    }
                }
            }
            let projected: Result<Row> = out.iter().map(|(e, _)| eval(&ctx2, &env, e)).collect();
            return match projected {
                Ok(r) => {
                    produced += 1;
                    Some(Ok(r))
                }
                Err(e) => {
                    failed = true;
                    Some(Err(e))
                }
            };
        }
    });

    Ok(Some(Rows {
        schema: out_schema,
        source: RowsSource::Lazy(Box::new(iter)),
    }))
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

fn exec_insert(
    ctx: &ExecCtx,
    table: &TableName,
    columns: Option<&[String]>,
    source: &InsertSource,
) -> Result<StmtOutcome> {
    // Produce the source rows first (the SELECT may scan other tables).
    let src_rows: Vec<Row> = match source {
        InsertSource::Values(rows) => {
            let binder = Binder::new(ctx, vec![Vec::new()]);
            let empty: Row = Vec::new();
            let env = Env::base(&empty);
            rows.iter()
                .map(|exprs| {
                    exprs
                        .iter()
                        .map(|e| eval(ctx, &env, &binder.bind(e)?))
                        .collect::<Result<Row>>()
                })
                .collect::<Result<_>>()?
        }
        // Use the full SELECT entry point so simple TOP-N scans take the
        // lazy pipeline and stop early instead of materializing the whole
        // table first.
        InsertSource::Select(q) => execute_select(ctx, q)?.collect::<Result<Vec<Row>>>()?,
    };

    let schema = ctx.resolve_table(table)?.schema().clone();
    // Map through the optional column list.
    let positions: Vec<usize> = match columns {
        Some(cols) => cols
            .iter()
            .map(|c| {
                schema
                    .col_index(c)
                    .ok_or_else(|| Error::Semantic(format!("unknown column {c}")))
            })
            .collect::<Result<_>>()?,
        None => (0..schema.arity()).collect(),
    };

    let mut full_rows = Vec::with_capacity(src_rows.len());
    for r in src_rows {
        if r.len() != positions.len() {
            return Err(Error::Semantic(format!(
                "INSERT expects {} values, got {}",
                positions.len(),
                r.len()
            )));
        }
        let mut full = vec![Value::Null; schema.arity()];
        for (v, &p) in r.into_iter().zip(&positions) {
            full[p] = v;
        }
        full_rows.push(schema.conform(full)?);
    }

    if table.temp {
        let mut temps = ctx.temps.lock();
        let tt = temps
            .tables
            .get_mut(&table.name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(format!("temp table #{}", table.name)))?;
        let n = full_rows.len();
        tt.rows.extend(full_rows);
        return Ok(StmtOutcome::Affected(n as u64));
    }

    let meta = ctx
        .storage
        .catalog
        .resolve(&table.name)
        .ok_or_else(|| Error::NotFound(format!("table {}", table.name)))?;
    let table_id = meta.read().id;
    if schema.primary_key.is_empty() {
        // No row identity to lock: exclusive table lock.
        ctx.storage
            .lock_table(&ctx.txn, table_id, LockMode::Exclusive)?;
    } else {
        ctx.storage
            .lock_table(&ctx.txn, table_id, LockMode::IntentionExclusive)?;
        for row in &full_rows {
            if let Some(kb) = crate::storage::heap::pk_key_bytes(&schema, row) {
                ctx.storage.lock_row(
                    &ctx.txn,
                    table_id,
                    crate::storage::heap::row_key_hash(&kb),
                    LockMode::Exclusive,
                )?;
            }
        }
    }
    let n = full_rows.len();
    for row in &full_rows {
        ctx.storage.insert_row(&ctx.txn, table_id, row)?;
    }
    Ok(StmtOutcome::Affected(n as u64))
}

fn exec_update(
    ctx: &ExecCtx,
    table: &TableName,
    sets: &[(String, crate::sql::ast::Expr)],
    filter: Option<&crate::sql::ast::Expr>,
) -> Result<StmtOutcome> {
    let schema = ctx.resolve_table(table)?.schema().clone();
    let cols: Vec<BoundCol> = schema
        .columns
        .iter()
        .map(|c| BoundCol::new(Some(table.name.clone()), c.name.clone(), c.dtype))
        .collect();
    let binder = Binder::new(ctx, vec![cols]);
    let bfilter = filter.map(|f| binder.bind(f)).transpose()?;
    let bsets: Vec<(usize, BExpr)> = sets
        .iter()
        .map(|(c, e)| {
            let idx = schema
                .col_index(c)
                .ok_or_else(|| Error::Semantic(format!("unknown column {c}")))?;
            Ok((idx, binder.bind(e)?))
        })
        .collect::<Result<_>>()?;

    if table.temp {
        let mut temps = ctx.temps.lock();
        let tt = temps
            .tables
            .get_mut(&table.name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(format!("temp table #{}", table.name)))?;
        let mut n = 0u64;
        for i in 0..tt.rows.len() {
            let keep = match &bfilter {
                Some(f) => truthy(&eval(ctx, &Env::base(&tt.rows[i]), f)?) == Some(true),
                None => true,
            };
            if keep {
                let mut new_row = tt.rows[i].clone();
                for (idx, e) in &bsets {
                    new_row[*idx] = eval(ctx, &Env::base(&tt.rows[i]), e)?
                        .coerce(tt.schema.columns[*idx].dtype)?;
                }
                tt.rows[i] = new_row;
                n += 1;
            }
        }
        return Ok(StmtOutcome::Affected(n));
    }

    let meta = ctx
        .storage
        .catalog
        .resolve(&table.name)
        .ok_or_else(|| Error::NotFound(format!("table {}", table.name)))?;
    let table_id = meta.read().id;

    // PK-targeted update (not touching key columns): IX + row X, point
    // lookup instead of a scan.
    let touches_pk = bsets.iter().any(|(i, _)| schema.primary_key.contains(i));
    let mut targets: Vec<(crate::storage::RowId, Row)> = Vec::new();
    let conjuncts: Vec<&crate::sql::ast::Expr> =
        filter.map(eval::split_conjuncts).unwrap_or_default();
    if !touches_pk && !schema.primary_key.is_empty() {
        if let Some(key_vals) = select::pk_probe(ctx, &schema, &conjuncts)? {
            ctx.storage
                .lock_table(&ctx.txn, table_id, LockMode::IntentionExclusive)?;
            let kb = crate::storage::heap::pk_lookup_bytes(&schema, &key_vals)?;
            ctx.storage.lock_row(
                &ctx.txn,
                table_id,
                crate::storage::heap::row_key_hash(&kb),
                LockMode::Exclusive,
            )?;
            if let Some(rid) = ctx.storage.pk_lookup(table_id, &key_vals)? {
                if let Some(row) = ctx.storage.fetch_row(rid)? {
                    let keep = match &bfilter {
                        Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
                        None => true,
                    };
                    if keep {
                        targets.push((rid, row));
                    }
                }
            }
            let n = targets.len();
            for (rid, row) in targets {
                let mut new_row = row.clone();
                for (idx, e) in &bsets {
                    new_row[*idx] =
                        eval(ctx, &Env::base(&row), e)?.coerce(schema.columns[*idx].dtype)?;
                }
                ctx.storage.update_row(&ctx.txn, table_id, rid, &new_row)?;
            }
            return Ok(StmtOutcome::Affected(n as u64));
        }
    }

    ctx.storage
        .lock_table(&ctx.txn, table_id, LockMode::Exclusive)?;

    // Collect matches first (updates relocate rows).
    for item in ctx.storage.scan(table_id)? {
        let (rid, row) = item?;
        let keep = match &bfilter {
            Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
            None => true,
        };
        if keep {
            targets.push((rid, row));
        }
    }
    let n = targets.len();
    for (rid, row) in targets {
        let mut new_row = row.clone();
        for (idx, e) in &bsets {
            new_row[*idx] = eval(ctx, &Env::base(&row), e)?.coerce(schema.columns[*idx].dtype)?;
        }
        ctx.storage.update_row(&ctx.txn, table_id, rid, &new_row)?;
    }
    Ok(StmtOutcome::Affected(n as u64))
}

fn exec_delete(
    ctx: &ExecCtx,
    table: &TableName,
    filter: Option<&crate::sql::ast::Expr>,
) -> Result<StmtOutcome> {
    let schema = ctx.resolve_table(table)?.schema().clone();
    let cols: Vec<BoundCol> = schema
        .columns
        .iter()
        .map(|c| BoundCol::new(Some(table.name.clone()), c.name.clone(), c.dtype))
        .collect();
    let binder = Binder::new(ctx, vec![cols]);
    let bfilter = filter.map(|f| binder.bind(f)).transpose()?;

    if table.temp {
        let mut temps = ctx.temps.lock();
        let tt = temps
            .tables
            .get_mut(&table.name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(format!("temp table #{}", table.name)))?;
        let before = tt.rows.len();
        let mut err = None;
        tt.rows.retain(|row| {
            if err.is_some() {
                return true;
            }
            match &bfilter {
                Some(f) => match eval(ctx, &Env::base(row), f) {
                    Ok(v) => truthy(&v) != Some(true),
                    Err(e) => {
                        err = Some(e);
                        true
                    }
                },
                None => false,
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        return Ok(StmtOutcome::Affected((before - tt.rows.len()) as u64));
    }

    let meta = ctx
        .storage
        .catalog
        .resolve(&table.name)
        .ok_or_else(|| Error::NotFound(format!("table {}", table.name)))?;
    let table_id = meta.read().id;

    // PK-targeted delete: IX + row X, point lookup.
    let mut targets = Vec::new();
    let conjuncts: Vec<&crate::sql::ast::Expr> =
        filter.map(eval::split_conjuncts).unwrap_or_default();
    if !schema.primary_key.is_empty() {
        if let Some(key_vals) = select::pk_probe(ctx, &schema, &conjuncts)? {
            ctx.storage
                .lock_table(&ctx.txn, table_id, LockMode::IntentionExclusive)?;
            let kb = crate::storage::heap::pk_lookup_bytes(&schema, &key_vals)?;
            ctx.storage.lock_row(
                &ctx.txn,
                table_id,
                crate::storage::heap::row_key_hash(&kb),
                LockMode::Exclusive,
            )?;
            if let Some(rid) = ctx.storage.pk_lookup(table_id, &key_vals)? {
                if let Some(row) = ctx.storage.fetch_row(rid)? {
                    let keep = match &bfilter {
                        Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
                        None => true,
                    };
                    if keep {
                        targets.push(rid);
                    }
                }
            }
            let n = targets.len();
            for rid in targets {
                ctx.storage.delete_row(&ctx.txn, table_id, rid)?;
            }
            return Ok(StmtOutcome::Affected(n as u64));
        }
    }

    ctx.storage
        .lock_table(&ctx.txn, table_id, LockMode::Exclusive)?;

    for item in ctx.storage.scan(table_id)? {
        let (rid, row) = item?;
        let keep = match &bfilter {
            Some(f) => truthy(&eval(ctx, &Env::base(&row), f)?) == Some(true),
            None => true,
        };
        if keep {
            targets.push(rid);
        }
    }
    let n = targets.len();
    for rid in targets {
        ctx.storage.delete_row(&ctx.txn, table_id, rid)?;
    }
    Ok(StmtOutcome::Affected(n as u64))
}

fn exec_create_table(
    ctx: &ExecCtx,
    table: &TableName,
    columns: &[crate::sql::ast::ColumnDef],
    pk_constraint: &[String],
) -> Result<StmtOutcome> {
    let mut cols = Vec::with_capacity(columns.len());
    let mut pk: Vec<usize> = Vec::new();
    for (i, c) in columns.iter().enumerate() {
        cols.push(crate::schema::Column {
            name: c.name.clone(),
            dtype: c.dtype,
            nullable: !c.not_null,
        });
        if c.primary_key {
            pk.push(i);
        }
    }
    for name in pk_constraint {
        let i = columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::Semantic(format!("unknown PK column {name}")))?;
        if !pk.contains(&i) {
            pk.push(i);
        }
        cols[i].nullable = false;
    }
    let schema = TableSchema {
        name: table.name.clone(),
        columns: cols,
        primary_key: pk,
    };

    if table.temp {
        let mut temps = ctx.temps.lock();
        let key = table.name.to_ascii_lowercase();
        if temps.tables.contains_key(&key) {
            return Err(Error::AlreadyExists(format!("temp table #{}", table.name)));
        }
        temps.tables.insert(
            key,
            TempTable {
                schema,
                rows: Vec::new(),
            },
        );
        return Ok(StmtOutcome::Ok);
    }

    ctx.storage.create_table(schema)?;
    Ok(StmtOutcome::Ok)
}

fn exec_drop_table(ctx: &ExecCtx, table: &TableName, if_exists: bool) -> Result<StmtOutcome> {
    let r = if table.temp {
        let mut temps = ctx.temps.lock();
        temps
            .tables
            .remove(&table.name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("temp table #{}", table.name)))
    } else {
        ctx.storage.drop_table(&table.name)
    };
    match r {
        Ok(()) => Ok(StmtOutcome::Ok),
        Err(Error::NotFound(_)) if if_exists => Ok(StmtOutcome::Ok),
        Err(e) => Err(e),
    }
}

fn exec_procedure(
    ctx: &ExecCtx,
    name: &str,
    args: &[crate::sql::ast::Expr],
) -> Result<StmtOutcome> {
    if ctx.depth >= 8 {
        return Err(Error::Semantic("procedure nesting too deep".into()));
    }
    let text = ctx
        .storage
        .catalog
        .get_proc(name)
        .ok_or_else(|| Error::NotFound(format!("procedure {name}")))?;
    let Stmt::CreateProc { params, body, .. } = parse_one(&text)? else {
        return Err(Error::Internal("stored procedure text corrupt".into()));
    };
    if args.len() != params.len() {
        return Err(Error::Semantic(format!(
            "procedure {name} expects {} arguments, got {}",
            params.len(),
            args.len()
        )));
    }
    // Evaluate arguments in the caller's context.
    let binder = Binder::new(ctx, vec![Vec::new()]);
    let empty: Row = Vec::new();
    let env = Env::base(&empty);
    let mut bound = HashMap::new();
    for (a, (pname, ptype)) in args.iter().zip(&params) {
        let v = eval(ctx, &env, &binder.bind(a)?)?.coerce(*ptype)?;
        bound.insert(pname.to_ascii_lowercase(), v);
    }
    let sub_ctx = ExecCtx {
        storage: Arc::clone(&ctx.storage),
        txn: Arc::clone(&ctx.txn),
        temps: Arc::clone(&ctx.temps),
        params: Arc::new(bound),
        depth: ctx.depth + 1,
    };
    let stmts = parse_statements(&body)?;
    let mut last = StmtOutcome::Ok;
    for s in &stmts {
        last = execute_stmt(&sub_ctx, s)?;
        // A lazy result set inside a procedure must be drained so later
        // statements see consistent state.
        if let StmtOutcome::Rows(rows) = last {
            let schema = rows.schema.clone();
            let collected: Result<Vec<Row>> = rows.collect();
            last = StmtOutcome::Rows(Rows {
                schema,
                source: RowsSource::Materialized(collected?.into_iter()),
            });
        }
    }
    Ok(last)
}

/// Static metadata for a SELECT (the `WHERE 0=1` support surface, also
/// exposed through the wire protocol's describe path).
pub fn describe_select(ctx: &ExecCtx, q: &crate::sql::ast::SelectStmt) -> Result<Vec<Column>> {
    infer_output_schema(ctx, q)
}
