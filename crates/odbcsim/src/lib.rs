//! # odbcsim
//!
//! An ODBC-like data access layer over the [`wire`] protocol — the stand-in
//! for the paper's *native ODBC driver*. It reproduces the driver behaviours
//! Phoenix builds on:
//!
//! * `exec_direct` returns when the statement completes **or** when the
//!   driver's bounded row buffer fills (default-result-set semantics: the
//!   server streams all rows immediately; client+network buffering is
//!   finite, so a large unconsumed result leaves the server's scan
//!   suspended — the Table 3 mechanism).
//! * `fetch` / `fetch_block` consume buffered rows, pulling more from the
//!   network on demand (block cursors are what Phoenix's client-side
//!   result cache uses to slurp a result in few calls).
//! * Connection-level failures surface as
//!   [`Error::is_connection_fatal`] errors, and a per-call query timeout
//!   is available — the two failure-detection channels Phoenix uses.
//! * `exec_direct_skip` executes with a server-side skip: the wire-level
//!   equivalent of the paper's "advance to tuple N" stored procedure.

// Tests exercise happy paths; the unwrap/expect hygiene baseline is
// aimed at library code (enforced harder by `cargo xtask lint`).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use sqlengine::schema::encode_row;
use sqlengine::types::{DataType, Row};
use sqlengine::{Error, Result};
use wire::{ClientConn, DbServer, DoneKind, Request, Response, StmtId};

/// Driver configuration (per connection).
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Login string recorded by the server (and replayed by Phoenix at
    /// recovery).
    pub login: String,
    /// Driver-side row buffer capacity in bytes. `exec_direct` returns
    /// once the statement is done or this buffer is full.
    pub buffer_bytes: usize,
    /// Per-receive timeout; `None` blocks indefinitely (up to the
    /// request watchdog).
    pub query_timeout: Option<Duration>,
    /// Request watchdog: wall-clock bound on one whole driver call
    /// (connect / exec / fetch / ping). A stalled receive — delivery
    /// withheld with no error raised — makes no per-receive progress
    /// and would otherwise hang; the watchdog converts it into a
    /// detectable [`Error::Timeout`]. `None` disables the watchdog.
    pub request_deadline: Option<Duration>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            login: "app".into(),
            buffer_bytes: 16 * 1024,
            query_timeout: Some(Duration::from_secs(30)),
            request_deadline: Some(Duration::from_secs(60)),
        }
    }
}

/// Watchdog for one driver call: yields per-receive timeouts clipped to
/// the remaining request budget, and raises [`Error::Timeout`] once the
/// budget is spent.
struct Watchdog {
    deadline: Option<Instant>,
}

impl Watchdog {
    fn start(cfg: &DriverConfig) -> Watchdog {
        Watchdog {
            deadline: cfg
                .request_deadline
                .and_then(|d| Instant::now().checked_add(d)),
        }
    }

    /// Timeout for the next receive: the per-receive `query_timeout`
    /// clipped to the watchdog's remaining budget. `Err(Timeout)` once
    /// the budget is exhausted.
    fn recv_timeout(&self, per_recv: Option<Duration>) -> Result<Option<Duration>> {
        let Some(d) = self.deadline else {
            return Ok(per_recv);
        };
        let now = Instant::now();
        if now >= d {
            return Err(Error::Timeout);
        }
        let remaining = d - now;
        Ok(Some(per_recv.map_or(remaining, |t| t.min(remaining))))
    }
}

struct ConnInner {
    conn: ClientConn,
    cfg: DriverConfig,
    dead: AtomicBool,
    next_stmt: AtomicU32,
    /// The statement currently allowed to own the response stream.
    active: Mutex<Option<StmtId>>,
}

impl ConnInner {
    fn fail(&self, e: Error) -> Error {
        if e.is_connection_fatal() {
            self.dead.store(true, Ordering::SeqCst);
            // Free anything blocked on this link (e.g. a server-side
            // result stream waiting for buffer space): the connection is
            // unusable, so tear the endpoint down now rather than when
            // the application drops the handle.
            self.conn.close();
        }
        e
    }

    fn check(&self) -> Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Error::ServerShutdown);
        }
        Ok(())
    }
}

impl Drop for ConnInner {
    fn drop(&mut self) {
        // A handle dropped without `close()` (e.g. recovery abandoning a
        // half-built connection pair after a shed) must still tear the
        // endpoint down, or the server keeps its admission slot charged
        // until the idle sweeper notices.
        self.conn.close();
    }
}

/// An ODBC-style connection (maps to one database session).
pub struct OdbcConnection {
    inner: Arc<ConnInner>,
    session: u64,
}

impl OdbcConnection {
    /// `SQLDriverConnect`: open a network connection and a session.
    pub fn connect(server: &DbServer, cfg: DriverConfig) -> Result<OdbcConnection> {
        let conn = server.connect()?;
        conn.send(&Request::Connect {
            login: cfg.login.clone(),
        })?;
        let wd = Watchdog::start(&cfg);
        let timeout = wd.recv_timeout(cfg.query_timeout)?;
        match conn.recv(timeout)? {
            Response::Connected { session } => Ok(OdbcConnection {
                inner: Arc::new(ConnInner {
                    conn,
                    cfg,
                    dead: AtomicBool::new(false),
                    next_stmt: AtomicU32::new(1),
                    active: Mutex::new(None),
                }),
                session,
            }),
            Response::Error { error, .. } => Err(error),
            _ => Err(Error::Internal("unexpected connect response".into())),
        }
    }

    /// Server-assigned session id (diagnostics only).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// True once a connection-fatal error has been observed.
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::SeqCst)
    }

    /// `SQLExecDirect`.
    pub fn exec_direct(&self, sql: &str) -> Result<OdbcStatement> {
        self.exec_direct_skip(sql, 0)
    }

    /// Execute with a server-side skip of the first `skip` result rows
    /// (they are scanned at the server, never transmitted).
    pub fn exec_direct_skip(&self, sql: &str, skip: u64) -> Result<OdbcStatement> {
        self.inner.check()?;
        // One active streaming statement per connection: retire the old one.
        {
            let mut active = self.inner.active.lock();
            if let Some(old) = active.take() {
                let _ = self.inner.conn.send(&Request::CloseStmt { stmt: old });
            }
        }
        let id = self.inner.next_stmt.fetch_add(1, Ordering::Relaxed);
        // Round trip measured from the request leaving the client to the
        // initial response pump completing (metadata + first buffer).
        let t_round = Instant::now();
        // Request about to leave the client: a crash here means the server
        // never saw it (safe to re-execute after recovery).
        faultkit::crashpoint!("odbc.send");
        self.inner
            .conn
            .send(&Request::Exec {
                stmt: id,
                sql: sql.to_string(),
                skip,
            })
            .map_err(|e| self.inner.fail(e))?;
        *self.inner.active.lock() = Some(id);

        let mut stmt = OdbcStatement {
            inner: Arc::clone(&self.inner),
            id,
            columns: Vec::new(),
            buf: VecDeque::new(),
            buf_bytes: 0,
            done: None,
            fetched: 0,
        };
        // Default result set: pump until done or driver buffer full.
        let wd = Watchdog::start(&stmt.inner.cfg);
        stmt.pump(true, &wd)?;
        obskit::metrics::global().record("odbcsim.roundtrip.exec", t_round.elapsed());
        obskit::trace::emit_span("odbcsim.roundtrip.exec", t_round.elapsed(), String::new());
        Ok(stmt)
    }

    /// Liveness probe on this connection.
    pub fn ping(&self) -> Result<()> {
        self.inner.check()?;
        let t_round = Instant::now();
        self.inner
            .conn
            .send(&Request::Ping)
            .map_err(|e| self.inner.fail(e))?;
        let wd = Watchdog::start(&self.inner.cfg);
        loop {
            let timeout = wd
                .recv_timeout(self.inner.cfg.query_timeout)
                .map_err(|e| self.inner.fail(e))?;
            match self.inner.conn.recv(timeout) {
                Ok(Response::Pong) => {
                    obskit::metrics::global().record("odbcsim.roundtrip.ping", t_round.elapsed());
                    return Ok(());
                }
                // Stale statement traffic may precede the pong.
                Ok(_) => continue,
                Err(e) => return Err(self.inner.fail(e)),
            }
        }
    }

    /// Orderly disconnect.
    pub fn disconnect(self) {
        let _ = self.inner.conn.send(&Request::Disconnect);
        self.inner.conn.close();
    }
}

/// How a statement finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// Produces rows; count known once fully streamed.
    ResultSet,
    /// DML with affected-row count.
    RowCount(u64),
    /// DDL / control.
    Ok,
}

/// An executed statement (SQLSTMT handle analogue).
pub struct OdbcStatement {
    inner: Arc<ConnInner>,
    id: StmtId,
    columns: Vec<(String, DataType)>,
    buf: VecDeque<Row>,
    buf_bytes: usize,
    done: Option<DoneKind>,
    fetched: u64,
}

impl std::fmt::Debug for OdbcStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OdbcStatement")
            .field("id", &self.id)
            .field("buffered", &self.buf.len())
            .field("done", &self.done)
            .finish()
    }
}

impl OdbcStatement {
    /// Result metadata (empty for row-count-only statements).
    pub fn columns(&self) -> &[(String, DataType)] {
        &self.columns
    }

    /// Classify how the statement finished (result set / row count / ok).
    pub fn kind(&self) -> StatementKind {
        match &self.done {
            Some(DoneKind::Affected(n)) => StatementKind::RowCount(*n),
            Some(DoneKind::Ok) => StatementKind::Ok,
            _ => StatementKind::ResultSet,
        }
    }

    /// Affected-row count for DML (`SQLRowCount`).
    pub fn row_count(&self) -> Option<u64> {
        match &self.done {
            Some(DoneKind::Affected(n)) | Some(DoneKind::Rows(n)) => Some(*n),
            _ => None,
        }
    }

    /// Whether the full result has arrived at the client.
    pub fn fully_received(&self) -> bool {
        self.done.is_some()
    }

    /// Rows fetched by the application so far.
    pub fn position(&self) -> u64 {
        self.fetched
    }

    /// `SQLFetch`: next row, or `None` at end of the result set.
    pub fn fetch(&mut self) -> Result<Option<Row>> {
        let wd = Watchdog::start(&self.inner.cfg);
        loop {
            if let Some(row) = self.buf.pop_front() {
                let mut tmp = Vec::new();
                encode_row(&row, &mut tmp);
                self.buf_bytes = self.buf_bytes.saturating_sub(tmp.len());
                self.fetched += 1;
                return Ok(Some(row));
            }
            if self.done.is_some() {
                return Ok(None);
            }
            self.pump(false, &wd)?;
        }
    }

    /// Block-cursor read of up to `n` rows (one driver call, many rows).
    pub fn fetch_block(&mut self, n: usize) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.fetch()? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }

    /// Close the statement, cancelling any suspended server-side stream.
    pub fn close(self) -> Result<()> {
        if self.done.is_none() {
            let mut active = self.inner.active.lock();
            if *active == Some(self.id) {
                *active = None;
            }
            self.inner
                .conn
                .send(&Request::CloseStmt { stmt: self.id })?;
        }
        Ok(())
    }

    /// Read responses. With `until_full`, returns once done OR the driver
    /// buffer is full; otherwise returns after any progress (rows/done).
    /// Every receive wait is clipped to the caller's request watchdog.
    fn pump(&mut self, until_full: bool, wd: &Watchdog) -> Result<()> {
        loop {
            if self.done.is_some() {
                return Ok(());
            }
            if until_full && self.buf_bytes >= self.inner.cfg.buffer_bytes {
                return Ok(());
            }
            // About to wait for a response: a crash here lands mid-delivery
            // (some rows buffered, the rest lost with the server).
            faultkit::crashpoint!("odbc.recv");
            let timeout = wd
                .recv_timeout(self.inner.cfg.query_timeout)
                .map_err(|e| self.inner.fail(e))?;
            let resp = self
                .inner
                .conn
                .recv(timeout)
                .map_err(|e| self.inner.fail(e))?;
            match resp {
                Response::Meta { stmt, columns } if stmt == self.id => {
                    self.columns = columns;
                }
                Response::RowBatch { stmt, rows } if stmt == self.id => {
                    for r in rows {
                        let mut tmp = Vec::new();
                        encode_row(&r, &mut tmp);
                        self.buf_bytes += tmp.len();
                        self.buf.push_back(r);
                    }
                    if !until_full {
                        return Ok(());
                    }
                }
                Response::Done { stmt, kind } if stmt == self.id => {
                    self.done = Some(kind);
                    let mut active = self.inner.active.lock();
                    if *active == Some(self.id) {
                        *active = None;
                    }
                    return Ok(());
                }
                Response::Error { stmt, error } if stmt == self.id => {
                    self.done = Some(DoneKind::Ok);
                    return Err(self.inner.fail(error));
                }
                // Traffic for cancelled/older statements: drop.
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::ServerConfig;

    fn server() -> DbServer {
        DbServer::start(ServerConfig::instant_net()).unwrap()
    }

    fn quick_cfg() -> DriverConfig {
        DriverConfig {
            query_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        }
    }

    #[test]
    fn connect_and_query() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c.exec_direct("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10))")
            .unwrap();
        let st = c
            .exec_direct("INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z')")
            .unwrap();
        assert_eq!(st.kind(), StatementKind::RowCount(3));

        let mut st = c.exec_direct("SELECT a, b FROM t ORDER BY a DESC").unwrap();
        assert_eq!(st.columns().len(), 2);
        let mut got = Vec::new();
        while let Some(r) = st.fetch().unwrap() {
            got.push(r[0].clone());
        }
        assert_eq!(
            got,
            vec![
                sqlengine::Value::Int(3),
                sqlengine::Value::Int(2),
                sqlengine::Value::Int(1)
            ]
        );
        assert_eq!(st.position(), 3);
    }

    #[test]
    fn metadata_probe_where_0_eq_1() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c.exec_direct("CREATE TABLE t (a INT, b VARCHAR(10), d DATE)")
            .unwrap();
        let mut st = c.exec_direct("SELECT a, b, d FROM t WHERE 0=1").unwrap();
        assert_eq!(
            st.columns(),
            &[
                ("a".to_string(), DataType::Int),
                ("b".to_string(), DataType::Str),
                ("d".to_string(), DataType::Date),
            ]
        );
        assert_eq!(st.fetch().unwrap(), None);
    }

    #[test]
    fn block_fetch() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c.exec_direct("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        let mut vals = String::from("INSERT INTO t VALUES ");
        for i in 0..50 {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("({i})"));
        }
        c.exec_direct(&vals).unwrap();
        let mut st = c.exec_direct("SELECT a FROM t").unwrap();
        let block = st.fetch_block(20).unwrap();
        assert_eq!(block.len(), 20);
        let rest = st.fetch_block(1000).unwrap();
        assert_eq!(rest.len(), 30);
        assert!(st.fully_received());
    }

    #[test]
    fn exec_returns_before_large_result_consumed() {
        // Small network + driver buffers: exec_direct must return with the
        // scan suspended server-side.
        let mut scfg = ServerConfig::instant_net();
        scfg.net_s2c.buffer_bytes = 4 * 1024;
        let s = DbServer::start(scfg).unwrap();
        let cfg = DriverConfig {
            buffer_bytes: 4 * 1024,
            query_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let c = OdbcConnection::connect(&s, cfg).unwrap();
        c.exec_direct("CREATE TABLE big (a INT PRIMARY KEY, pad VARCHAR(120))")
            .unwrap();
        for b in 0..20 {
            let mut vals = String::from("INSERT INTO big VALUES ");
            for i in 0..100 {
                let k = b * 100 + i;
                if i > 0 {
                    vals.push(',');
                }
                vals.push_str(&format!(
                    "({k}, 'pppppppppppppppppppppppppppppppppppppppp')"
                ));
            }
            c.exec_direct(&vals).unwrap();
        }
        let mut st = c.exec_direct("SELECT * FROM big").unwrap();
        assert!(
            !st.fully_received(),
            "2000 wide rows cannot fit in 8 KiB of buffering"
        );
        // Consuming everything eventually drains the stream.
        let all = st.fetch_block(10_000).unwrap();
        assert_eq!(all.len(), 2000);
        assert!(st.fully_received());
    }

    #[test]
    fn errors_are_statement_scoped() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        let e = c.exec_direct("SELECT * FROM missing").unwrap_err();
        assert!(matches!(e, Error::NotFound(_)));
        // Connection still usable.
        c.exec_direct("CREATE TABLE t (a INT)").unwrap();
        c.exec_direct("INSERT INTO t VALUES (1)").unwrap();
    }

    #[test]
    fn crash_surfaces_fatal_error_and_ping_detects() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c.exec_direct("CREATE TABLE t (a INT)").unwrap();
        s.crash();
        let e = c.exec_direct("SELECT * FROM t").unwrap_err();
        assert!(e.is_connection_fatal());
        assert!(c.is_dead());
        assert!(c.ping().is_err());
        // New connection fails while down, works after restart.
        assert!(OdbcConnection::connect(&s, quick_cfg()).is_err());
        s.restart().unwrap();
        let c2 = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c2.exec_direct("SELECT * FROM t").unwrap();
    }

    #[test]
    fn watchdog_converts_stalled_receive_into_timeout() {
        use faultkit::net::{NetFaultKind, NetPlan, STALL};
        let s = server();
        // Stall the link at the 2nd message of every pipe: the Exec
        // request (client→server message #2, after Connect) is withheld
        // with no error raised — the pathological hung read.
        s.set_fault_plan(Some(NetPlan::at(NetFaultKind::Stall, 2)));
        let cfg = DriverConfig {
            // No per-receive timeout: only the watchdog can detect this.
            query_timeout: None,
            request_deadline: Some(Duration::from_millis(100)),
            ..Default::default()
        };
        let c = OdbcConnection::connect(&s, cfg).unwrap();
        let t = Instant::now();
        let e = c.exec_direct("CREATE TABLE w (a INT)").unwrap_err();
        assert!(matches!(e, Error::Timeout), "got {e:?}");
        assert!(
            t.elapsed() < STALL,
            "watchdog must fire before the stall drains, took {:?}",
            t.elapsed()
        );
        assert!(c.is_dead(), "a timed-out request marks the link suspect");
    }

    #[test]
    fn server_side_skip() {
        let s = server();
        let c = OdbcConnection::connect(&s, quick_cfg()).unwrap();
        c.exec_direct("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        let mut vals = String::from("INSERT INTO t VALUES ");
        for i in 0..100 {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("({i})"));
        }
        c.exec_direct(&vals).unwrap();
        let mut st = c.exec_direct_skip("SELECT a FROM t", 97).unwrap();
        let rest = st.fetch_block(100).unwrap();
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn new_statement_supersedes_suspended_one() {
        let mut scfg = ServerConfig::instant_net();
        scfg.net_s2c.buffer_bytes = 1024;
        let s = DbServer::start(scfg).unwrap();
        let cfg = DriverConfig {
            buffer_bytes: 1024,
            query_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let c = OdbcConnection::connect(&s, cfg).unwrap();
        c.exec_direct("CREATE TABLE t (a INT PRIMARY KEY, pad VARCHAR(100))")
            .unwrap();
        let mut vals = String::from("INSERT INTO t VALUES ");
        for i in 0..500 {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("({i}, 'pppppppppppppppppppppppppppppp')"));
        }
        c.exec_direct(&vals).unwrap();
        let st = c.exec_direct("SELECT * FROM t").unwrap();
        assert!(!st.fully_received());
        drop(st); // application walks away without closing
                  // Next statement works; old stream is cancelled server-side.
        let mut st2 = c.exec_direct("SELECT TOP 1 a FROM t WHERE a = 42").unwrap();
        let rows = st2.fetch_block(10).unwrap();
        assert_eq!(rows.len(), 1);
    }
}
