//! Instrumentation-coverage passes: cross-checks between the three
//! harnesses the repo already has.
//!
//! 1. **Durability** — a function that emits a `wal.*` / `persist.*` /
//!    `disk.*` / `recovery.*` obskit name is a durability site; it must
//!    also contain
//!    a `crashpoint!` in the same family, or crash testing silently lost
//!    coverage of that site. (Client-side `phoenix.recovery.*` phase
//!    events are exempt: the client has no crashpoints by design.)
//! 2. **Scenario** — every crashpoint name compiled into non-test code
//!    must be referenced by at least one scenario under `tests/` (exact
//!    string or a dot-terminated prefix like `"wal."`), or the fault
//!    enumeration can never reach it.
//! 3. **Phase** — the `RecoveryPhases` struct, its `NAMES` table and the
//!    emitting code must stay in sync: every phase field needs a
//!    `phoenix.recovery.<field>` entry and vice versa.
//! 4. **Gauge balance** — a gauge that is only ever `.add()`-ed a
//!    constant positive amount can never come back down: it is a level
//!    leak by construction (a session count that rises on admit must
//!    fall somewhere on release/evict). Gauges driven through `set`/`max`
//!    or through variable deltas are out of scope.

use super::items::FnDef;
use super::lexer::{Tok, TokKind};
use super::Workspace;
use std::path::PathBuf;

use crate::{Rule, Violation};

/// Names that flow into the durability cross-check. `disk` joined the
/// family with the storage fault-injection layer, and `admission` with
/// overload shedding: a function emitting `disk.*` events (fault draws,
/// corruption repair, scrubbing) or `admission.*` events (shed, admit,
/// evict — the registry mutations a crash can interleave with) must be
/// crash-testable like any other durability site.
pub fn is_durability_name(name: &str) -> bool {
    name.split('.')
        .any(|seg| seg == "wal" || seg == "persist" || seg == "disk" || seg == "admission")
        || name.starts_with("recovery.")
}

/// `crashpoint!("name")` invocations in a token run.
pub fn crashpoints_in(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        if toks[j].is_ident("crashpoint")
            && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            if let Some(s) = toks.get(j + 3).filter(|t| t.kind == TokKind::Str) {
                out.push((s.text.clone(), s.line));
            }
        }
    }
    out
}

const OBSKIT_MACROS: &[&str] = &["event", "span"];
const OBSKIT_CALLS: &[&str] = &[
    "record",
    "counter",
    "gauge",
    "observe",
    "emit_span",
    "emit_instant",
];

/// Obskit metric/event names emitted in a token run: the first string
/// argument of `event!`/`span!` and of the registry calls.
pub fn obskit_names_in(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name_tok = if OBSKIT_MACROS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            toks.get(j + 3)
        } else if OBSKIT_CALLS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
        {
            toks.get(j + 2)
        } else {
            None
        };
        if let Some(s) = name_tok.filter(|t| t.kind == TokKind::Str) {
            out.push((s.text.clone(), s.line));
        }
    }
    out
}

fn fn_line_range(def: &FnDef) -> (usize, usize) {
    let lo = def.line as usize;
    let hi = def.body.last().map_or(lo, |t| t.line as usize);
    (lo, hi)
}

/// Pass 1: durability sites must carry a crashpoint.
pub fn durability_pass(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        for def in &file.items.fns {
            let emitted: Vec<(String, u32)> = obskit_names_in(&def.body)
                .into_iter()
                .filter(|(n, _)| is_durability_name(n))
                .collect();
            if emitted.is_empty() {
                continue;
            }
            let has_crash = crashpoints_in(&def.body)
                .iter()
                .any(|(n, _)| is_durability_name(n));
            if has_crash {
                continue;
            }
            let (lo, hi) = fn_line_range(def);
            if (lo..=hi).any(|l| file.allows.waives("durability", l)) {
                continue;
            }
            let (name, line) = &emitted[0];
            out.push(Violation {
                file: PathBuf::from(&file.rel),
                line: *line as usize,
                rule: Rule::Durability,
                message: format!(
                    "{} emits durability event {name:?} but contains no durability crashpoint!",
                    def.qual_name()
                ),
            });
        }
    }
    out
}

/// Pass 2: every compiled crashpoint needs a covering test scenario.
pub fn scenario_pass(ws: &Workspace) -> Vec<Violation> {
    let covered = |name: &str| {
        ws.test_literals
            .iter()
            .any(|l| l == name || (l.ends_with('.') && name.starts_with(l.as_str())))
    };
    let mut out = Vec::new();
    for file in &ws.files {
        for def in &file.items.fns {
            for (name, line) in crashpoints_in(&def.body) {
                if covered(&name) || file.allows.waives("scenario", line as usize) {
                    continue;
                }
                out.push(Violation {
                    file: PathBuf::from(&file.rel),
                    line: line as usize,
                    rule: Rule::Scenario,
                    message: format!(
                        "crashpoint {name:?} is not referenced by any scenario under tests/"
                    ),
                });
            }
        }
    }
    out
}

/// One directly chained `gauge("<name>").add(<integer literal>)` site.
struct GaugeAdd {
    name: String,
    line: u32,
    negative: bool,
}

/// `gauge("name").add(±N)` chains in a token run. Only literal deltas
/// are reported: a handle bound to a variable or a computed delta can't
/// be sign-checked statically and is deliberately ignored.
fn gauge_adds_in(toks: &[Tok]) -> Vec<GaugeAdd> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        if !toks[j].is_ident("gauge")
            || !toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            || !toks.get(j + 3).is_some_and(|t| t.is_punct(')'))
            || !toks.get(j + 4).is_some_and(|t| t.is_punct('.'))
            || !toks.get(j + 5).is_some_and(|t| t.is_ident("add"))
            || !toks.get(j + 6).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(name) = toks.get(j + 2).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        let negative = toks.get(j + 7).is_some_and(|t| t.is_punct('-'));
        let delta = toks.get(j + 7 + usize::from(negative));
        if delta.is_some_and(|t| t.kind == TokKind::Num) {
            out.push(GaugeAdd {
                name: name.text.clone(),
                line: name.line,
                negative,
            });
        }
    }
    out
}

/// Pass 4: every gauge with constant positive `.add()` sites needs at
/// least one negative site, or the level can only ratchet upward — a
/// leak the storm tests would see as `sessions.active` never draining.
pub fn gauge_balance_pass(ws: &Workspace) -> Vec<Violation> {
    #[derive(Default)]
    struct Balance {
        first_pos: Option<(String, u32)>,
        has_neg: bool,
        waived: bool,
    }
    let mut gauges: std::collections::BTreeMap<String, Balance> = std::collections::BTreeMap::new();
    for file in &ws.files {
        for add in file.items.fns.iter().flat_map(|d| gauge_adds_in(&d.body)) {
            let entry = gauges.entry(add.name).or_default();
            if add.negative {
                entry.has_neg = true;
            } else {
                entry.waived |= file.allows.waives("gauge_balance", add.line as usize);
                if entry.first_pos.is_none() {
                    entry.first_pos = Some((file.rel.clone(), add.line));
                }
            }
        }
    }
    let mut out = Vec::new();
    for (name, bal) in gauges {
        let Some((rel, line)) = bal.first_pos else {
            continue;
        };
        if bal.has_neg || bal.waived {
            continue;
        }
        out.push(Violation {
            file: PathBuf::from(rel),
            line: line as usize,
            rule: Rule::GaugeBalance,
            message: format!(
                "gauge {name:?} has constant positive add sites but no negative site — \
                 the level can only ratchet up (leak by construction)"
            ),
        });
    }
    out
}

/// Pass 3: recovery phases ↔ names table ↔ emission. Returns the number
/// of phases checked (0 = the struct was not found — the workspace test
/// guards against that going stale).
pub fn phase_pass(ws: &Workspace) -> (usize, Vec<Violation>) {
    let mut out = Vec::new();
    let Some((file, def)) = ws.files.iter().find_map(|f| {
        f.items
            .structs
            .iter()
            .find(|s| s.name == "RecoveryPhases")
            .map(|s| (f, s))
    }) else {
        return (0, out);
    };
    if file.allows.waives("phase", def.line as usize) {
        return (def.fields.len(), out);
    }
    let names = const_str_array(&file.toks, "NAMES");
    for f in &def.fields {
        let want = format!("phoenix.recovery.{}", f.name);
        if !names.contains(&want) {
            out.push(Violation {
                file: PathBuf::from(&file.rel),
                line: def.line as usize,
                rule: Rule::Phase,
                message: format!(
                    "recovery phase field {:?} has no {want:?} entry in RecoveryPhases::NAMES",
                    f.name
                ),
            });
        }
    }
    for n in &names {
        let field = n.rsplit('.').next().unwrap_or_default();
        if !def.fields.iter().any(|f| f.name == field) {
            out.push(Violation {
                file: PathBuf::from(&file.rel),
                line: def.line as usize,
                rule: Rule::Phase,
                message: format!("NAMES entry {n:?} matches no RecoveryPhases field"),
            });
        }
    }
    // The defining file must actually publish the phases as spans.
    if !file.toks.iter().any(|t| t.is_ident("emit_span")) {
        out.push(Violation {
            file: PathBuf::from(&file.rel),
            line: def.line as usize,
            rule: Rule::Phase,
            message: "recovery phases are never emitted via obskit emit_span in this file".into(),
        });
    }
    (def.fields.len(), out)
}

/// String entries of `const NAME: […] = ["a", "b", …];` in a file.
fn const_str_array(toks: &[Tok], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        if toks[j].is_ident(name) && toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            // Skip the type annotation up to the `=`. The array length in
            // `[&'static str; 6]` hides a `;` inside brackets, so only a
            // top-level `;` (no initializer at all) ends the search.
            let mut k = j + 1;
            let mut depth = 0i32;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('[') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(']') || t.is_punct(')') {
                    depth -= 1;
                } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                    break;
                }
                k += 1;
            }
            if !toks.get(k).is_some_and(|t| t.is_punct('=')) {
                continue; // declaration without an initializer
            }
            while k < toks.len() && !toks[k].is_punct(';') {
                if toks[k].kind == TokKind::Str {
                    out.push(toks[k].text.clone());
                }
                k += 1;
            }
            if !out.is_empty() {
                break;
            }
        }
    }
    out
}
