//! Item extraction: structs (field-type tables), impl blocks, functions
//! (with parameter tables and body token ranges), and static lock cells.
//!
//! The extractor is a brace-depth cursor over the flat token stream from
//! [`super::lexer`]. It understands just enough structure to answer the
//! questions the lock and coverage passes ask — which type a receiver
//! resolves to, which fields are `Mutex`/`RwLock` cells, which tokens make
//! up a function body — and deliberately nothing more (no expressions, no
//! generics semantics, no trait resolution).
//!
//! `#[cfg(test)]` items are skipped entirely, mirroring the lint engine's
//! test exemption: test-only lock usage never contributes graph edges.

use super::lexer::{Tok, TokKind};

/// Lock cell flavor, from the field's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// One struct field: name, resolved base type, and lock flavor if the
/// declared type contains a `Mutex`/`RwLock`.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    /// First CamelCase identifier in the type after stripping smart
    /// pointers and containers (`Arc<LogStore>` → `LogStore`); empty when
    /// the type bottoms out in primitives.
    pub base_ty: String,
    pub lock: Option<LockKind>,
}

#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub line: u32,
}

/// A `static NAME: Mutex<…>` cell (any nesting depth — function-local
/// statics are process-wide locks all the same).
#[derive(Debug, Clone)]
pub struct StaticDef {
    pub name: String,
    pub kind: LockKind,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub impl_ty: Option<String>,
    /// Parameter table `name → base type` (self excluded).
    pub params: Vec<(String, String)>,
    pub has_self: bool,
    /// Body tokens between (exclusive) the outer braces. Empty for
    /// bodiless trait signatures.
    pub body: Vec<Tok>,
    pub line: u32,
}

impl FnDef {
    /// `Type::name` when inside an impl, else the bare name.
    pub fn qual_name(&self) -> String {
        match &self.impl_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub structs: Vec<StructDef>,
    pub statics: Vec<StaticDef>,
    pub fns: Vec<FnDef>,
}

/// Wrapper / container type names skipped when resolving a field or
/// parameter to its base type.
const TY_WRAPPERS: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "Weak",
    "Pin",
    "RefCell",
    "Cell",
    "Option",
    "Result",
    "Vec",
    "VecDeque",
    "HashMap",
    "BTreeMap",
    "HashSet",
    "BTreeSet",
    "Mutex",
    "RwLock",
    "PoisonError",
    "Duration",
    "Instant",
    "String",
    "PathBuf",
];

/// Resolve a token run describing a type to its base type name: the first
/// CamelCase identifier that is neither a wrapper nor an ALL_CAPS const.
fn base_ty_of(toks: &[Tok]) -> String {
    for t in toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        let mut chars = s.chars();
        let leads_upper = chars.next().is_some_and(|c| c.is_ascii_uppercase());
        let has_lower = s.chars().any(|c| c.is_ascii_lowercase());
        if leads_upper && has_lower && !TY_WRAPPERS.contains(&s) {
            return s.to_string();
        }
    }
    String::new()
}

fn lock_kind_of(toks: &[Tok]) -> Option<LockKind> {
    for t in toks {
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Mutex" => return Some(LockKind::Mutex),
                "RwLock" => return Some(LockKind::RwLock),
                _ => {}
            }
        }
    }
    None
}

/// Extract all items from a lexed file.
pub fn extract(toks: &[Tok]) -> FileItems {
    let mut out = FileItems::default();
    let mut cur = Cursor { toks, i: 0 };
    parse_items(&mut cur, None, usize::MAX, &mut out);
    out
}

struct Cursor<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.i)
    }
    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        self.i += 1;
        t
    }

    /// Skip one balanced `open…close` group; assumes cursor sits on `open`.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip a generics group `<…>`; assumes cursor sits on `<`. Handles
    /// `->` inside bounds (`F: Fn() -> T`) by ignoring a `>` that directly
    /// follows a `-`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.bump() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            prev_dash = t.is_punct('-');
        }
    }

    /// Skip forward past the end of one item: through the first balanced
    /// `{…}` group, or to a `;` outside any bracket nesting, whichever
    /// comes first. Used to discard `#[cfg(test)]` items.
    fn skip_item(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                self.skip_group('{', '}');
                return;
            }
            if t.is_punct('(') {
                self.skip_group('(', ')');
                // Tuple struct `struct X(…);` — keep going to the `;`.
                continue;
            }
            if t.is_punct('[') {
                self.skip_group('[', ']');
                continue;
            }
            if t.is_punct('<') {
                self.skip_angles();
                continue;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('}') {
                // Stray close (end of enclosing body): stop without eating.
                return;
            }
            self.bump();
        }
    }
}

/// Parse items until `end` tokens are consumed or a closing `}` of the
/// enclosing body is found. `impl_ty` is the enclosing impl/trait type.
fn parse_items(cur: &mut Cursor, impl_ty: Option<&str>, _end: usize, out: &mut FileItems) {
    let mut skip_next_item = false;
    while let Some(t) = cur.peek() {
        if t.is_punct('}') {
            cur.bump();
            return;
        }
        if t.is_punct('#') {
            // Attribute: `#[…]` or `#![…]`. Inspect for cfg(test).
            cur.bump();
            if cur.peek().is_some_and(|t| t.is_punct('!')) {
                cur.bump();
            }
            if cur.peek().is_some_and(|t| t.is_punct('[')) {
                let start = cur.i;
                cur.skip_group('[', ']');
                let attr = &cur.toks[start..cur.i];
                let has = |w: &str| attr.iter().any(|t| t.is_ident(w));
                if has("cfg") && has("test") {
                    skip_next_item = true;
                }
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            // Stray punctuation at item level (e.g. leftover from a parse
            // miss): step over group openers safely.
            if t.is_punct('{') {
                cur.skip_group('{', '}');
            } else {
                cur.bump();
            }
            continue;
        }
        match t.text.as_str() {
            _ if skip_next_item => {
                skip_next_item = false;
                cur.skip_item();
            }
            "macro_rules" => {
                // `macro_rules! name { … }` — opaque, skip the body.
                cur.bump();
                while let Some(t) = cur.peek() {
                    if t.is_punct('{') {
                        cur.skip_group('{', '}');
                        break;
                    }
                    cur.bump();
                }
            }
            "struct" => parse_struct(cur, out),
            "static" => parse_static(cur, out),
            "impl" => parse_impl(cur, out),
            "trait" => {
                // `trait Name [: bounds] { default methods… }`
                cur.bump();
                let name = cur.bump().map(|t| t.text.clone()).unwrap_or_default();
                while let Some(t) = cur.peek() {
                    if t.is_punct('<') {
                        cur.skip_angles();
                    } else if t.is_punct('{') {
                        cur.bump();
                        parse_items(cur, Some(&name), usize::MAX, out);
                        break;
                    } else if t.is_punct(';') {
                        cur.bump();
                        break;
                    } else {
                        cur.bump();
                    }
                }
            }
            "mod" => {
                cur.bump();
                while let Some(t) = cur.peek() {
                    if t.is_punct('{') {
                        cur.bump();
                        parse_items(cur, impl_ty, usize::MAX, out);
                        break;
                    }
                    if t.is_punct(';') {
                        cur.bump();
                        break;
                    }
                    cur.bump();
                }
            }
            "fn" => parse_fn(cur, impl_ty, out),
            "enum" | "union" => {
                cur.bump();
                cur.skip_item();
            }
            _ => {
                // `pub`, `use`, `const`, `type`, `extern`, visibility
                // qualifiers, … — irrelevant prefixes or whole items.
                // `use`/`const`/`type` run to a `;`; qualifiers fall
                // through to the next keyword.
                let word = t.text.clone();
                cur.bump();
                if matches!(word.as_str(), "use" | "const" | "type" | "extern") {
                    while let Some(t) = cur.peek() {
                        if t.is_punct(';') {
                            cur.bump();
                            break;
                        }
                        if t.is_punct('{') {
                            cur.skip_group('{', '}');
                            // `extern "C" { … }` ends here.
                            break;
                        }
                        cur.bump();
                    }
                }
            }
        }
    }
}

fn parse_struct(cur: &mut Cursor, out: &mut FileItems) {
    let line = cur.peek().map_or(0, |t| t.line);
    cur.bump(); // struct
    let Some(name_tok) = cur.bump() else { return };
    let name = name_tok.text.clone();
    // Generics, then `{ fields }` / `(tuple);` / `;`.
    if cur.peek().is_some_and(|t| t.is_punct('<')) {
        cur.skip_angles();
    }
    // A `where` clause may precede the braces.
    while let Some(t) = cur.peek() {
        if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            cur.skip_angles();
        } else {
            cur.bump();
        }
    }
    let mut fields = Vec::new();
    match cur.peek() {
        Some(t) if t.is_punct('{') => {
            cur.bump();
            loop {
                // Skip field attributes and visibility.
                while let Some(t) = cur.peek() {
                    if t.is_punct('#') {
                        cur.bump();
                        if cur.peek().is_some_and(|t| t.is_punct('[')) {
                            cur.skip_group('[', ']');
                        }
                    } else if t.is_ident("pub") {
                        cur.bump();
                        if cur.peek().is_some_and(|t| t.is_punct('(')) {
                            cur.skip_group('(', ')');
                        }
                    } else {
                        break;
                    }
                }
                match cur.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        cur.bump();
                        break;
                    }
                    _ => {}
                }
                let Some(fname) = cur.bump() else { break };
                let fname = fname.text.clone();
                if !cur.peek().is_some_and(|t| t.is_punct(':')) {
                    // Not a field after all; bail out of this struct.
                    cur.skip_item();
                    break;
                }
                cur.bump(); // :
                            // Type tokens to the next top-level `,` or `}`.
                let ty_start = cur.i;
                loop {
                    match cur.peek() {
                        None => break,
                        Some(t) if t.is_punct(',') => break,
                        Some(t) if t.is_punct('}') => break,
                        Some(t) if t.is_punct('<') => cur.skip_angles(),
                        Some(t) if t.is_punct('(') => cur.skip_group('(', ')'),
                        Some(t) if t.is_punct('[') => cur.skip_group('[', ']'),
                        _ => {
                            cur.bump();
                        }
                    }
                }
                let ty = &cur.toks[ty_start..cur.i];
                fields.push(FieldDef {
                    name: fname,
                    base_ty: base_ty_of(ty),
                    lock: lock_kind_of(ty),
                });
                if cur.peek().is_some_and(|t| t.is_punct(',')) {
                    cur.bump();
                }
            }
        }
        Some(t) if t.is_punct('(') => {
            cur.skip_group('(', ')');
            if cur.peek().is_some_and(|t| t.is_punct(';')) {
                cur.bump();
            }
        }
        Some(t) if t.is_punct(';') => {
            cur.bump();
        }
        _ => {}
    }
    out.structs.push(StructDef { name, fields, line });
}

fn parse_static(cur: &mut Cursor, out: &mut FileItems) {
    let line = cur.peek().map_or(0, |t| t.line);
    cur.bump(); // static
    if cur.peek().is_some_and(|t| t.is_ident("mut")) {
        cur.bump();
    }
    let Some(name_tok) = cur.peek() else { return };
    let name = name_tok.text.clone();
    cur.bump();
    if !cur.peek().is_some_and(|t| t.is_punct(':')) {
        return;
    }
    cur.bump();
    // Type tokens to the `=` or `;`.
    let ty_start = cur.i;
    loop {
        match cur.peek() {
            None => break,
            Some(t) if t.is_punct('=') || t.is_punct(';') => break,
            Some(t) if t.is_punct('<') => cur.skip_angles(),
            Some(t) if t.is_punct('(') => cur.skip_group('(', ')'),
            Some(t) if t.is_punct('[') => cur.skip_group('[', ']'),
            _ => {
                cur.bump();
            }
        }
    }
    if let Some(kind) = lock_kind_of(&cur.toks[ty_start..cur.i]) {
        out.statics.push(StaticDef { name, kind, line });
    }
    // Initializer runs to the `;` — leave it to the caller loop, which
    // treats the tokens as inert.
}

fn parse_impl(cur: &mut Cursor, out: &mut FileItems) {
    cur.bump(); // impl
    if cur.peek().is_some_and(|t| t.is_punct('<')) {
        cur.skip_angles();
    }
    // Collect the header up to `{`; the impl type is the path after `for`
    // when present, else the first path.
    let mut first_path: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    loop {
        match cur.peek() {
            None => return,
            Some(t) if t.is_punct('{') => {
                cur.bump();
                break;
            }
            Some(t) if t.is_ident("for") => {
                saw_for = true;
                cur.bump();
            }
            Some(t) if t.is_ident("where") => {
                // Skip to the `{`.
                while let Some(t) = cur.peek() {
                    if t.is_punct('{') {
                        break;
                    }
                    if t.is_punct('<') {
                        cur.skip_angles();
                    } else {
                        cur.bump();
                    }
                }
            }
            Some(t) if t.is_punct('<') => cur.skip_angles(),
            Some(t) => {
                if t.kind == TokKind::Ident {
                    if saw_for {
                        after_for.push(t.text.clone());
                    } else {
                        first_path.push(t.text.clone());
                    }
                }
                cur.bump();
            }
        }
    }
    let path = if saw_for { &after_for } else { &first_path };
    // Last CamelCase segment of the path (`fmt::Display for wal::LogStore`
    // → `LogStore`); tolerate `&`/`mut` receivers by skipping lowercase.
    let ty = path
        .iter()
        .rev()
        .find(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .cloned();
    parse_items(cur, ty.as_deref(), usize::MAX, out);
}

fn parse_fn(cur: &mut Cursor, impl_ty: Option<&str>, out: &mut FileItems) {
    let line = cur.peek().map_or(0, |t| t.line);
    cur.bump(); // fn
    let Some(name_tok) = cur.bump() else { return };
    let name = name_tok.text.clone();
    if cur.peek().is_some_and(|t| t.is_punct('<')) {
        cur.skip_angles();
    }
    if !cur.peek().is_some_and(|t| t.is_punct('(')) {
        return;
    }
    // Parameters: split the paren group on top-level commas.
    let params_start = cur.i + 1;
    cur.skip_group('(', ')');
    let params_toks = &cur.toks[params_start..cur.i.saturating_sub(1)];
    let (params, has_self) = parse_params(params_toks);

    // Return type / where clause up to the body or a bodiless `;`.
    let mut body = Vec::new();
    loop {
        match cur.peek() {
            None => break,
            Some(t) if t.is_punct(';') => {
                cur.bump();
                break;
            }
            Some(t) if t.is_punct('{') => {
                let body_start = cur.i + 1;
                cur.skip_group('{', '}');
                body = cur.toks[body_start..cur.i.saturating_sub(1)].to_vec();
                break;
            }
            Some(t) if t.is_punct('<') => cur.skip_angles(),
            _ => {
                cur.bump();
            }
        }
    }
    out.fns.push(FnDef {
        name,
        impl_ty: impl_ty.map(str::to_string),
        params,
        has_self,
        body,
        line,
    });
}

/// Split a parameter token run on top-level commas and resolve each to
/// `(pattern name, base type)`.
fn parse_params(toks: &[Tok]) -> (Vec<(String, String)>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut depth = 0i32;
    let mut prev_dash = false;
    let mut seg_start = 0usize;
    let mut segs: Vec<&[Tok]> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || (t.is_punct('>') && !prev_dash) {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            segs.push(&toks[seg_start..k]);
            seg_start = k + 1;
        }
        prev_dash = t.is_punct('-');
    }
    if seg_start < toks.len() {
        segs.push(&toks[seg_start..]);
    }
    for seg in segs {
        let idents: Vec<&Tok> = seg.iter().filter(|t| t.kind == TokKind::Ident).collect();
        if idents
            .iter()
            .find(|t| !t.is_ident("mut"))
            .is_some_and(|t| t.is_ident("self"))
        {
            has_self = true;
            continue;
        }
        // `pat : type` — split at the first top-level colon (a `::` path
        // cannot appear in a pattern before the type colon).
        let Some(colon) = seg.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let pat_name = seg[..colon]
            .iter()
            .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
            .map(|t| t.text.clone());
        let Some(pat_name) = pat_name else { continue };
        params.push((pat_name, base_ty_of(&seg[colon + 1..])));
    }
    (params, has_self)
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn items(src: &str) -> FileItems {
        extract(&lex(src))
    }

    #[test]
    fn struct_fields_and_lock_kinds() {
        let it = items(
            "pub struct BufferPool { disk: Arc<MemDisk>, pub inner: Mutex<PoolInner>, cap: usize }\n\
             struct Frame { data: RwLock<Box<[u8; PAGE_SIZE]>> }",
        );
        let bp = &it.structs[0];
        assert_eq!(bp.name, "BufferPool");
        assert_eq!(bp.fields[0].base_ty, "MemDisk");
        assert_eq!(bp.fields[0].lock, None);
        assert_eq!(bp.fields[1].lock, Some(LockKind::Mutex));
        assert_eq!(it.structs[1].fields[0].lock, Some(LockKind::RwLock));
    }

    #[test]
    fn impl_and_fn_extraction() {
        let it = items(
            "impl BufferPool {\n  pub fn fetch(&self, id: PageId) -> Result<PageGuard, E> {\n    let g = self.inner.lock();\n  }\n}\n\
             impl fmt::Display for Violation { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { } }\n\
             fn free(frame: &Arc<Frame>) {}",
        );
        assert_eq!(it.fns.len(), 3);
        assert_eq!(it.fns[0].qual_name(), "BufferPool::fetch");
        assert!(it.fns[0].has_self);
        assert_eq!(it.fns[0].params, vec![("id".into(), "PageId".into())]);
        assert!(it.fns[0].body.iter().any(|t| t.is_ident("lock")));
        assert_eq!(it.fns[1].qual_name(), "Violation::fmt");
        assert_eq!(it.fns[2].params, vec![("frame".into(), "Frame".into())]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let it = items(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  struct Hidden { x: Mutex<u8> }\n  fn t() {}\n}\nfn live2() {}",
        );
        assert_eq!(
            it.fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["live", "live2"]
        );
        assert!(it.structs.is_empty());
    }

    #[test]
    fn statics_with_lock_types() {
        let it = items(
            "static STATE: Mutex<State> = Mutex::new(State::Off);\n\
             static COUNT: AtomicU64 = AtomicU64::new(0);\n\
             fn f() { static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new()); }",
        );
        // Top-level statics are seen here; function-local ones live in the
        // body and are collected by the flat pass in mod.rs.
        assert_eq!(it.statics.len(), 1);
        assert_eq!(it.statics[0].name, "STATE");
        assert_eq!(it.statics[0].kind, LockKind::Mutex);
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let it = items(
            "impl<K: Ord, V> Store<K, V> where K: Clone {\n  fn get<Q>(&self, q: &Q) -> Option<&V> where Q: Fn() -> K { None }\n}",
        );
        assert_eq!(it.fns[0].qual_name(), "Store::get");
    }
}
