//! phoenix-analyze: a small static-analysis framework over the workspace.
//!
//! Where phoenix-lint (in the crate root) judges single lines, the
//! analyzer builds a model of the whole workspace — structs, impls,
//! functions, call sites — and answers cross-cutting questions:
//!
//! * the **lock-order graph** ([`locks`]): which lock is ever acquired
//!   while which other is held, with cycle detection (potential
//!   deadlocks) and a full `file:line` acquisition chain per cycle;
//! * **instrumentation coverage** ([`coverage`]): durability sites carry
//!   crashpoints, crashpoints are reachable from test scenarios, and the
//!   recovery-phase table is internally consistent;
//! * the **lockcheck witness** ([`check_witness`]): a runtime acquisition
//!   log from `obskit::lockcheck` is validated against the static graph;
//! * **bench coverage** ([`bench`]): every bench binary emits its JSON
//!   twin, and every blessed baseline under `bench_baselines/` still
//!   corresponds to a bench binary (or a `[gate] extra` manifest entry).
//!
//! False positives are waived in-source with
//! `// analyze:allow(<pass>): reason` (passes: `lock_edge`,
//! `durability`, `scenario`, `phase`, `gauge_balance`, `bench`) — same
//! own-line / next-line semantics as `lint:allow`, and a reason is
//! mandatory.

pub mod bench;
pub mod coverage;
pub mod items;
pub mod lexer;
pub mod locks;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::{Rule, Violation};

/// Waivers collected from one file's `analyze:allow` comments.
#[derive(Debug, Default)]
pub struct AllowMap {
    entries: Vec<(String, usize)>,
}

impl AllowMap {
    pub fn waives(&self, pass: &str, line: usize) -> bool {
        self.entries.iter().any(|(p, l)| p == pass && *l == line)
    }
}

pub const ANALYZE_PASSES: &[&str] = &[
    "lock_edge",
    "durability",
    "scenario",
    "phase",
    "gauge_balance",
    "bench",
];

/// Parse `// analyze:allow(<pass>): reason` annotations. Returns the
/// allow map and any malformed annotations (line, complaint). A match
/// outside a comment (a string literal quoting the syntax) or with a
/// non-identifier placeholder pass (`<pass>`) is documentation, not a
/// directive, and is skipped silently.
fn collect_allows(src: &str) -> (AllowMap, Vec<(usize, String)>) {
    let mut map = AllowMap::default();
    let mut bad = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("analyze:allow(") else {
            continue;
        };
        let Some(cpos) = line.find("//") else {
            continue;
        };
        if cpos > pos {
            continue;
        }
        let rest = &line[pos + "analyze:allow(".len()..];
        let Some(close) = rest.find(')') else {
            bad.push((lineno, "unterminated analyze:allow".to_string()));
            continue;
        };
        let pass = rest[..close].trim();
        if pass
            .chars()
            .any(|c| !c.is_ascii_lowercase() && !c.is_ascii_digit() && c != '_')
        {
            continue;
        }
        if !ANALYZE_PASSES.contains(&pass) {
            bad.push((
                lineno,
                format!("unknown analyze pass {pass:?} (expected one of {ANALYZE_PASSES:?})"),
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reasoned = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !reasoned {
            bad.push((
                lineno,
                format!("analyze:allow({pass}) without a reason — add `: why`"),
            ));
            continue;
        }
        let own_line = line[..cpos].trim().is_empty();
        let waived = if own_line { lineno + 1 } else { lineno };
        map.entries.push((pass.to_string(), waived));
    }
    (map, bad)
}

/// One analyzed source file.
pub struct SrcFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate directory name (`core`, `sqlengine`, …) — used to qualify
    /// static lock cells.
    pub crate_name: String,
    pub toks: Vec<lexer::Tok>,
    pub items: items::FileItems,
    pub allows: AllowMap,
    bad_allows: Vec<(usize, String)>,
}

/// The loaded workspace: all non-fixture sources under `crates/*/src`,
/// plus the string literals of the test corpus (`tests/*.rs` and the
/// integration support crate) for scenario-coverage matching.
pub struct Workspace {
    pub files: Vec<SrcFile>,
    pub test_literals: Vec<String>,
    /// Blessed perf-baseline directories (`bench_baselines/` and its
    /// subsets) for the bench-coverage pass. Empty for fixture
    /// workspaces unless the test populates it.
    pub baseline_dirs: Vec<bench::BaselineDir>,
}

impl Workspace {
    /// Build a workspace from in-memory sources — the fixture tests use
    /// this to analyze synthetic files.
    pub fn from_sources<S: AsRef<str>>(
        files: &[(&str, &str, S)],
        test_sources: &[&str],
    ) -> Workspace {
        let files = files
            .iter()
            .map(|(rel, crate_name, src)| {
                let src = src.as_ref();
                let toks = lexer::lex(src);
                let items = items::extract(&toks);
                let (allows, bad_allows) = collect_allows(src);
                SrcFile {
                    rel: rel.to_string(),
                    crate_name: crate_name.to_string(),
                    toks,
                    items,
                    allows,
                    bad_allows,
                }
            })
            .collect();
        let test_literals = test_sources
            .iter()
            .flat_map(|src| {
                lexer::lex(src)
                    .into_iter()
                    .filter(|t| t.kind == lexer::TokKind::Str)
                    .map(|t| t.text)
            })
            .collect();
        Workspace {
            files,
            test_literals,
            baseline_dirs: Vec::new(),
        }
    }
}

/// Load every Rust source under `crates/*/src` (skipping `fixtures`
/// directories) plus the test corpus.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut sources: Vec<(String, String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = dir.join("src");
        if src_dir.is_dir() {
            walk_rs(&src_dir, &mut |p| {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .replace('\\', "/");
                let src = std::fs::read_to_string(p)?;
                sources.push((rel, crate_name.clone(), src));
                Ok(())
            })?;
        }
    }
    let mut test_sources = Vec::new();
    for dir in [root.join("tests"), root.join("crates/integration/src")] {
        if dir.is_dir() {
            walk_rs(&dir, &mut |p| {
                test_sources.push(std::fs::read_to_string(p)?);
                Ok(())
            })?;
        }
    }
    let files = sources
        .iter()
        .map(|(rel, crate_name, src)| (rel.as_str(), crate_name.as_str(), src.as_str()))
        .collect::<Vec<_>>();
    let tests = test_sources.iter().map(String::as_str).collect::<Vec<_>>();
    let mut ws = Workspace::from_sources(&files, &tests);
    ws.baseline_dirs = bench::load_baseline_dirs(root)?;
    Ok(ws)
}

fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path) -> std::io::Result<()>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            walk_rs(&p, f)?;
        } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
            f(&p)?;
        }
    }
    Ok(())
}

/// Summary counters for the report and the JSON artifact.
#[derive(Debug, Default)]
pub struct Stats {
    pub files: usize,
    pub functions: usize,
    pub acquisitions: usize,
    pub acq_unresolved: usize,
    pub calls_resolved: usize,
    pub calls_unresolved: usize,
    pub nodes: usize,
    pub edges: usize,
    pub edges_waived: usize,
    pub cycles: usize,
    pub crashpoints: usize,
    pub phases_checked: usize,
    pub bench_bins: usize,
}

pub struct Analysis {
    pub graph: locks::LockGraph,
    pub cycles: Vec<locks::Cycle>,
    pub violations: Vec<Violation>,
    pub stats: Stats,
}

/// Run every pass over a loaded workspace.
pub fn analyze(ws: &Workspace) -> Analysis {
    let (graph, lock_stats) = locks::build_graph(ws);
    let cycles = locks::find_cycles(&graph);
    let mut violations = Vec::new();
    for c in &cycles {
        violations.push(Violation {
            file: PathBuf::from(&c.sites[0].file),
            line: c.sites[0].line as usize,
            rule: Rule::Deadlock,
            message: format!("potential deadlock cycle: {}", c.chain()),
        });
    }
    violations.extend(coverage::durability_pass(ws));
    violations.extend(coverage::scenario_pass(ws));
    violations.extend(coverage::gauge_balance_pass(ws));
    violations.extend(bench::bench_pass(ws));
    let (phases_checked, phase_violations) = coverage::phase_pass(ws);
    violations.extend(phase_violations);
    for file in &ws.files {
        for (line, msg) in &file.bad_allows {
            violations.push(Violation {
                file: PathBuf::from(&file.rel),
                line: *line,
                rule: Rule::BadAllow,
                message: msg.clone(),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let crashpoints = ws
        .files
        .iter()
        .flat_map(|f| f.items.fns.iter())
        .map(|d| coverage::crashpoints_in(&d.body).len())
        .sum();
    let stats = Stats {
        files: ws.files.len(),
        functions: lock_stats.functions,
        acquisitions: lock_stats.acquisitions,
        acq_unresolved: lock_stats.acq_unresolved,
        calls_resolved: lock_stats.calls_resolved,
        calls_unresolved: lock_stats.calls_unresolved,
        nodes: graph.nodes.len(),
        edges: graph.edges.len(),
        edges_waived: lock_stats.edges_waived,
        cycles: cycles.len(),
        crashpoints,
        phases_checked,
        bench_bins: bench::bench_bins(ws).len(),
    };
    Analysis {
        graph,
        cycles,
        violations,
        stats,
    }
}

/// Validate a runtime lockcheck witness (JSON from
/// `obskit::lockcheck::snapshot_json`) against the static graph: a
/// runtime edge `a → b` contradicts the analysis if the static graph
/// orders `b` before `a`, and a runtime lock name the static analysis
/// has never seen is drift.
pub fn check_witness(graph: &locks::LockGraph, text: &str, witness_path: &str) -> Vec<Violation> {
    let mk = |message: String| Violation {
        file: PathBuf::from(witness_path),
        line: 0,
        rule: Rule::Witness,
        message,
    };
    let doc = match obskit::json::Json::parse(text) {
        Ok(d) => d,
        Err(e) => return vec![mk(format!("unparseable lockcheck witness: {e}"))],
    };
    if doc.get("lockcheck").and_then(|v| v.as_f64()) != Some(1.0) {
        return vec![mk("not a lockcheck v1 witness".to_string())];
    }
    let Some(edges) = doc.get("edges").and_then(|v| v.as_arr()) else {
        return vec![mk("lockcheck witness has no edges array".to_string())];
    };
    let mut out = Vec::new();
    for e in edges {
        let (Some(from), Some(to)) = (
            e.get("from").and_then(|v| v.as_str()),
            e.get("to").and_then(|v| v.as_str()),
        ) else {
            out.push(mk(format!("malformed witness edge: {e:?}")));
            continue;
        };
        for n in [from, to] {
            if !graph.nodes.contains(n) {
                out.push(mk(format!(
                    "runtime lock {n:?} is unknown to the static graph — static/dynamic drift"
                )));
            }
        }
        if !graph.nodes.contains(from) || !graph.nodes.contains(to) {
            continue;
        }
        if from == to {
            if !graph
                .edges
                .contains_key(&(from.to_string(), to.to_string()))
            {
                out.push(mk(format!(
                    "runtime re-acquisition of {from:?} has no static self-edge — drift"
                )));
            }
        } else if graph.reaches(to, from) {
            out.push(mk(format!(
                "runtime order {from:?} -> {to:?} contradicts the static graph, which orders \
                 {to:?} before {from:?}"
            )));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn violations_json(violations: &[Violation]) -> String {
    let mut s = String::from("[");
    for (k, v) in violations.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&v.file.to_string_lossy()),
            v.line,
            v.rule.name(),
            json_escape(&v.message)
        );
    }
    s.push(']');
    s
}

/// Machine-readable lint report, schema-versioned like obskit exports.
pub fn lint_json(violations: &[Violation]) -> String {
    format!(
        "{{\"phoenix_lint\":1,\"violations\":{}}}\n",
        violations_json(violations)
    )
}

/// Machine-readable analysis report: violations, the inferred graph, and
/// the pass statistics.
pub fn analysis_json(a: &Analysis) -> String {
    let mut s = String::from("{\"phoenix_analyze\":1,");
    let _ = write!(s, "\"violations\":{},", violations_json(&a.violations));
    s.push_str("\"graph\":{\"nodes\":[");
    for (k, n) in a.graph.nodes.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", json_escape(n));
    }
    s.push_str("],\"edges\":[");
    for (k, ((from, to), site)) in a.graph.edges.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{},\"fn\":\"{}\"}}",
            json_escape(from),
            json_escape(to),
            json_escape(&site.file),
            site.line,
            json_escape(&site.func)
        );
    }
    s.push_str("]},\"stats\":{");
    let st = &a.stats;
    let _ = write!(
        s,
        "\"files\":{},\"functions\":{},\"acquisitions\":{},\"acq_unresolved\":{},\
         \"calls_resolved\":{},\"calls_unresolved\":{},\"nodes\":{},\"edges\":{},\
         \"edges_waived\":{},\"cycles\":{},\"crashpoints\":{},\"phases_checked\":{},\
         \"bench_bins\":{}",
        st.files,
        st.functions,
        st.acquisitions,
        st.acq_unresolved,
        st.calls_resolved,
        st.calls_unresolved,
        st.nodes,
        st.edges,
        st.edges_waived,
        st.cycles,
        st.crashpoints,
        st.phases_checked,
        st.bench_bins
    );
    s.push_str("}}\n");
    s
}
