//! Lock-order inference: per-function lock acquisitions, a one-level
//! transitive call graph, and a global lock-order graph with cycle
//! detection.
//!
//! Nodes are lock *cells*, named `Struct::field` (e.g.
//! `BufferPool::inner`) or `crate::STATIC` for static cells. An edge
//! `a → b` means some function acquires `b` while holding `a`, either
//! directly in its own body or by calling a function that (within one
//! level of transitivity) acquires `b`. A cycle in this graph is a
//! potential deadlock: two threads taking the members in opposite order
//! can block each other forever.
//!
//! Receiver resolution is intentionally shallow — `self.field`,
//! `self.f1.f2`, `param.field`, statics, and a unique-field-name
//! fallback — and everything it cannot resolve is counted rather than
//! guessed, so the graph never contains fabricated nodes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use super::items::{FnDef, LockKind, StructDef};
use super::lexer::{Tok, TokKind};
use super::{SrcFile, Workspace};

/// Where an edge was created: caller file/line plus the responsible
/// function, and (for call-site edges) the callee that takes the lock.
#[derive(Debug, Clone)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub func: String,
    /// Set for edges induced at a call site: the (possibly transitive)
    /// callee whose body performs the acquisition.
    pub via: Option<String>,
}

impl Site {
    pub fn describe(&self) -> String {
        match &self.via {
            Some(v) => format!("{}:{} in {} via {}", self.file, self.line, self.func, v),
            None => format!("{}:{} in {}", self.file, self.line, self.func),
        }
    }
}

/// The inferred lock-order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub nodes: BTreeSet<String>,
    /// `(from, to) → first site that created the edge`.
    pub edges: BTreeMap<(String, String), Site>,
}

impl LockGraph {
    pub fn successors<'a>(&'a self, n: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.edges
            .range((n.to_string(), String::new())..)
            .take_while(move |((f, _), _)| f == n)
            .map(|((_, t), _)| t.as_str())
    }

    /// True when `to` is reachable from `from` along edges.
    pub fn reaches(&self, from: &str, to: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_string()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            for s in self.successors(&n) {
                stack.push(s.to_string());
            }
        }
        false
    }
}

/// One cycle through the graph: the node sequence (first == last) and the
/// site of each edge along it.
#[derive(Debug)]
pub struct Cycle {
    pub nodes: Vec<String>,
    pub sites: Vec<Site>,
}

impl Cycle {
    /// Render the full acquisition chain, one `file:line` per edge.
    pub fn chain(&self) -> String {
        let mut s = String::new();
        for (k, site) in self.sites.iter().enumerate() {
            if k > 0 {
                s.push_str(", then ");
            }
            s.push_str(&format!(
                "{} -> {} at {}",
                self.nodes[k],
                self.nodes[k + 1],
                site.describe()
            ));
        }
        s
    }
}

/// Counters the analyzer keeps instead of guessing.
#[derive(Debug, Default)]
pub struct LockStats {
    pub functions: usize,
    pub acquisitions: usize,
    pub acq_unresolved: usize,
    pub calls_resolved: usize,
    pub calls_unresolved: usize,
    pub edges_waived: usize,
}

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const STMT_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in",
];

/// Identity of a function in the global table.
type FnId = usize;

struct FnRef<'a> {
    file: &'a SrcFile,
    def: &'a FnDef,
}

/// Global resolution tables shared by the per-function pass.
pub struct Resolver<'a> {
    fns: Vec<FnRef<'a>>,
    /// `(impl type, method) → FnId`.
    methods: HashMap<(&'a str, &'a str), FnId>,
    /// free functions by name (unique only).
    free_fns: HashMap<&'a str, Option<FnId>>,
    /// method name → ids (for unique-name fallback).
    by_name: HashMap<&'a str, Vec<FnId>>,
    /// struct name → defs (duplicates kept; lock lookup scans all).
    structs: HashMap<&'a str, Vec<&'a StructDef>>,
    /// lock-field name → owning struct names (for the unique fallback).
    lock_fields: HashMap<&'a str, BTreeSet<&'a str>>,
    /// static cell name → crates declaring it.
    statics: HashMap<String, BTreeSet<String>>,
}

impl<'a> Resolver<'a> {
    pub fn build(ws: &'a Workspace) -> Self {
        let mut r = Resolver {
            fns: Vec::new(),
            methods: HashMap::new(),
            free_fns: HashMap::new(),
            by_name: HashMap::new(),
            structs: HashMap::new(),
            lock_fields: HashMap::new(),
            statics: HashMap::new(),
        };
        for file in &ws.files {
            for s in &file.items.structs {
                r.structs.entry(s.name.as_str()).or_default().push(s);
                for f in &s.fields {
                    if f.lock.is_some() {
                        r.lock_fields
                            .entry(f.name.as_str())
                            .or_default()
                            .insert(s.name.as_str());
                    }
                }
            }
            for def in &file.items.fns {
                let id = r.fns.len();
                r.fns.push(FnRef { file, def });
                r.by_name.entry(def.name.as_str()).or_default().push(id);
                match &def.impl_ty {
                    Some(ty) => {
                        r.methods.insert((ty.as_str(), def.name.as_str()), id);
                    }
                    None => {
                        r.free_fns
                            .entry(def.name.as_str())
                            .and_modify(|e| *e = None) // duplicate → ambiguous
                            .or_insert(Some(id));
                    }
                }
            }
            // Flat static-cell pass: catches function-local statics too.
            for (name, _kind) in scan_statics(&file.toks) {
                r.statics
                    .entry(name)
                    .or_default()
                    .insert(file.crate_name.clone());
            }
        }
        r
    }

    /// The lock field `field` on struct `ty`, as a graph node name.
    fn lock_field_node(&self, ty: &str, field: &str) -> Option<String> {
        let defs = self.structs.get(ty)?;
        for s in defs.iter() {
            if let Some(f) = s.fields.iter().find(|f| f.name == field) {
                if f.lock.is_some() {
                    return Some(format!("{ty}::{field}"));
                }
            }
        }
        None
    }

    /// Base type of field `field` on struct `ty`.
    fn field_ty(&self, ty: &str, field: &str) -> Option<&'a str> {
        for s in self.structs.get(ty)? {
            if let Some(f) = s.fields.iter().find(|f| f.name == field) {
                if !f.base_ty.is_empty() {
                    return Some(f.base_ty.as_str());
                }
            }
        }
        None
    }

    fn static_node(&self, name: &str, from_crate: &str) -> Option<String> {
        let crates = self.statics.get(name)?;
        if crates.contains(from_crate) {
            return Some(format!("{from_crate}::{name}"));
        }
        if crates.len() == 1 {
            return Some(format!("{}::{name}", crates.iter().next().unwrap()));
        }
        None
    }
}

/// All `static NAME: Mutex/RwLock<…>` declarations in a token stream,
/// regardless of nesting depth.
fn scan_statics(toks: &[Tok]) -> Vec<(String, LockKind)> {
    let mut out = Vec::new();
    let mut j = 0;
    while j + 3 < toks.len() {
        if toks[j].is_ident("static") && toks[j].kind == TokKind::Ident {
            let mut k = j + 1;
            if toks[k].is_ident("mut") {
                k += 1;
            }
            if toks[k].kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct(':')) {
                let name = toks[k].text.clone();
                // Type runs to the `=` or `;`.
                let mut m = k + 2;
                let mut kind = None;
                while m < toks.len() && !toks[m].is_punct('=') && !toks[m].is_punct(';') {
                    if toks[m].is_ident("Mutex") {
                        kind.get_or_insert(LockKind::Mutex);
                    } else if toks[m].is_ident("RwLock") {
                        kind.get_or_insert(LockKind::RwLock);
                    }
                    m += 1;
                }
                if let Some(kind) = kind {
                    out.push((name, kind));
                }
                j = m;
                continue;
            }
        }
        j += 1;
    }
    out
}

/// What one function's body does, in graph terms.
#[derive(Debug, Default)]
struct FnFacts {
    /// Directly acquired nodes with their lines.
    direct: Vec<(String, u32)>,
    /// Resolved call sites: callee id, held nodes at the call, line.
    calls: Vec<(FnId, Vec<String>, u32)>,
    /// Intra-function edges (held → acquired).
    edges: Vec<(String, String, u32)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum StmtKind {
    /// `let …` — guard bound to a name, lives to end of enclosing block.
    Let,
    /// `if let` / `while let` / `match` / `for` — scrutinee temporaries
    /// live through the body block.
    BindingCond,
    /// plain `if` / `while` — condition temporaries die at the `{`.
    PlainCond,
    Other,
}

struct Guard {
    node: String,
    name: Option<String>,
    /// Alive while brace depth ≥ this.
    min_depth: i32,
    /// Temporary (dies at the statement's `;`) vs block-scoped.
    temp: bool,
}

/// Walk one function body: track live guards, record acquisitions, edges
/// and resolved call sites.
fn analyze_fn(r: &Resolver, file: &SrcFile, def: &FnDef, stats: &mut LockStats) -> FnFacts {
    let mut facts = FnFacts::default();
    let toks = &def.body;
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_kind = StmtKind::Other;
    let mut stmt_fresh = true;
    let mut let_name: Option<String> = None;

    let param_ty = |name: &str| -> Option<&str> {
        def.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
            .filter(|t| !t.is_empty())
    };

    let mut j = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            // Temporaries created in this statement either extend through
            // the body (binding conditions) or die here (plain ones).
            match stmt_kind {
                StmtKind::BindingCond => {
                    for g in guards.iter_mut().filter(|g| g.temp && g.min_depth == depth) {
                        g.temp = false;
                        g.min_depth = depth + 1;
                    }
                }
                StmtKind::PlainCond => {
                    guards.retain(|g| !(g.temp && g.min_depth == depth));
                }
                _ => {}
            }
            depth += 1;
            stmt_fresh = true;
            stmt_kind = StmtKind::Other;
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.min_depth <= depth);
            stmt_fresh = true;
            stmt_kind = StmtKind::Other;
            j += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.temp && g.min_depth == depth));
            stmt_fresh = true;
            stmt_kind = StmtKind::Other;
            let_name = None;
            j += 1;
            continue;
        }
        if stmt_fresh && t.kind == TokKind::Ident {
            stmt_fresh = false;
            stmt_kind = classify_stmt(toks, j);
            let_name = if stmt_kind == StmtKind::Let {
                let_binding_name(toks, j)
            } else {
                None
            };
        }

        // `drop(name)` releases the named guard.
        if t.is_ident("drop")
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(j + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                if let Some(pos) = guards
                    .iter()
                    .position(|g| g.name.as_deref() == Some(name.text.as_str()))
                {
                    guards.remove(pos);
                }
                j += 4;
                continue;
            }
        }

        // Candidate: identifier directly followed by `(` — an acquisition
        // or a call (macros excluded by the `!` check).
        let is_callish = t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            && !STMT_KEYWORDS.contains(&t.text.as_str());
        if is_callish {
            let dotted = j > 0 && toks[j - 1].is_punct('.');
            let chain = if dotted {
                receiver_chain(toks, j)
            } else {
                Vec::new()
            };
            let word = t.text.as_str();
            let mut handled = false;

            if dotted && LOCK_METHODS.contains(&word) {
                stats.acquisitions += 1;
                if let Some(node) = resolve_lock(r, file, def, &chain, param_ty) {
                    for g in &guards {
                        facts.edges.push((g.node.clone(), node.clone(), t.line));
                    }
                    facts.direct.push((node.clone(), t.line));
                    guards.push(Guard {
                        node,
                        name: let_name.clone(),
                        min_depth: depth,
                        temp: stmt_kind != StmtKind::Let,
                    });
                    handled = true;
                } else {
                    stats.acquisitions -= 1; // will recount below if a call
                }
            }
            if !handled && word.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                match resolve_call(r, file, def, &chain, word, dotted, toks, j, param_ty) {
                    Some(callee) => {
                        stats.calls_resolved += 1;
                        let held: Vec<String> = guards.iter().map(|g| g.node.clone()).collect();
                        facts.calls.push((callee, held, t.line));
                    }
                    None => {
                        if dotted && LOCK_METHODS.contains(&word) {
                            // Unresolvable `.lock()`-shaped site: count it
                            // so drift shows up in the stats.
                            stats.acquisitions += 1;
                            stats.acq_unresolved += 1;
                        } else {
                            stats.calls_unresolved += 1;
                        }
                    }
                }
            }
        }
        j += 1;
    }
    facts
}

/// Classify the statement starting at token `j`.
fn classify_stmt(toks: &[Tok], j: usize) -> StmtKind {
    let word = toks[j].text.as_str();
    match word {
        "let" => StmtKind::Let,
        "if" | "while" => {
            if toks.get(j + 1).is_some_and(|t| t.is_ident("let")) {
                StmtKind::BindingCond
            } else {
                StmtKind::PlainCond
            }
        }
        "else" if toks.get(j + 1).is_some_and(|t| t.is_ident("if")) => classify_stmt(toks, j + 1),
        "match" | "for" => StmtKind::BindingCond,
        _ => StmtKind::Other,
    }
}

/// First lowercase identifier in the pattern of a `let` statement —
/// handles `let mut g`, `let Some(g)`, `let (a, b)`, `let Ok(v) = … else`.
fn let_binding_name(toks: &[Tok], j: usize) -> Option<String> {
    let mut k = j + 1;
    while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && !t.is_ident("mut")
            && !t.is_ident("ref")
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase())
        {
            return Some(t.text.clone());
        }
        k += 1;
    }
    None
}

/// Walk the `.`-separated receiver chain left of the method identifier at
/// `j`: `self.frame.data.read(` → `["self", "frame", "data"]`. A balanced
/// `[…]` index group is skipped — `self.shards[si].lock(` names the
/// `shards` cell regardless of the index expression, which is how
/// lock-striped `Vec<Mutex<_>>` / `[Mutex<_>; N]` fields are acquired.
/// Stops at anything else that is not `ident .` — a `)` leaves a partial
/// chain.
fn receiver_chain(toks: &[Tok], j: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut k = j as i64 - 1; // the `.`
    while k >= 1 {
        if !toks[k as usize].is_punct('.') {
            break;
        }
        let mut p = k - 1;
        if p >= 0 && toks[p as usize].is_punct(']') {
            let mut depth = 0i64;
            while p >= 0 {
                if toks[p as usize].is_punct(']') {
                    depth += 1;
                } else if toks[p as usize].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p -= 1;
            }
            if depth != 0 {
                break;
            }
            p -= 1; // the token before `[`
        }
        if p < 0 || toks[p as usize].kind != TokKind::Ident {
            break;
        }
        chain.push(toks[p as usize].text.clone());
        k = p - 1;
    }
    chain.reverse();
    chain
}

/// Resolve an acquisition receiver chain to a lock node, or None when the
/// site is really a method call (or unresolvable).
fn resolve_lock<'a>(
    r: &Resolver,
    file: &SrcFile,
    def: &FnDef,
    chain: &[String],
    param_ty: impl Fn(&str) -> Option<&'a str>,
) -> Option<String> {
    match chain {
        // `self.field.lock()`
        [s, f] if s == "self" => {
            let ty = def.impl_ty.as_deref()?;
            r.lock_field_node(ty, f)
        }
        // `self.f1.f2.lock()` — two-hop through a field's type.
        [s, f1, f2] if s == "self" => {
            let ty = def.impl_ty.as_deref()?;
            let mid = r.field_ty(ty, f1)?;
            r.lock_field_node(mid, f2)
        }
        // `param.field.lock()`
        [p, f] => {
            let ty = param_ty(p)?;
            r.lock_field_node(ty, f)
        }
        // `CELL.lock()` — a static, or a param that IS the cell.
        [x] => {
            if x.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                return r.static_node(x, &file.crate_name);
            }
            // `fn f(m: &Mutex<State>)`-style: the base type names the
            // payload, which is not a cell we can track. Give up here;
            // resolve_call gets a chance next.
            None
        }
        // Longer/partial chains: unique lock-field-name fallback.
        [.., f] => {
            let owners = r.lock_fields.get(f.as_str())?;
            if owners.len() == 1 {
                Some(format!("{}::{f}", owners.iter().next().unwrap()))
            } else {
                None
            }
        }
        [] => None,
    }
}

/// Resolve a call site to a function id.
#[allow(clippy::too_many_arguments)]
fn resolve_call<'a>(
    r: &Resolver,
    _file: &SrcFile,
    def: &FnDef,
    chain: &[String],
    method: &str,
    dotted: bool,
    toks: &[Tok],
    j: usize,
    param_ty: impl Fn(&str) -> Option<&'a str>,
) -> Option<FnId> {
    if dotted {
        let recv_ty: Option<&str> = match chain {
            [s] if s == "self" => def.impl_ty.as_deref(),
            [s, f] if s == "self" => {
                let ty = def.impl_ty.as_deref()?;
                r.field_ty(ty, f)
            }
            [p] => param_ty(p),
            [p, f] => {
                let ty = param_ty(p)?;
                r.field_ty(ty, f)
            }
            _ => None,
        };
        if let Some(ty) = recv_ty {
            if let Some(&id) = r.methods.get(&(ty, method)) {
                return Some(id);
            }
        }
        // Unique-name fallback across all methods — except for the lock
        // verbs, where a unique workspace method (say `PageGuard::read`)
        // must not swallow an unrelated io `.read(…)` call.
        if LOCK_METHODS.contains(&method) {
            return None;
        }
        let ids = r.by_name.get(method)?;
        if ids.len() == 1 {
            return Some(ids[0]);
        }
        return None;
    }
    // `Type::func(…)` associated call.
    if j >= 3 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        if toks[j - 3].kind == TokKind::Ident {
            if let Some(&id) = r.methods.get(&(toks[j - 3].text.as_str(), method)) {
                return Some(id);
            }
        }
        return None;
    }
    // Free function.
    (*r.free_fns.get(method)?).or_else(|| {
        let ids = r.by_name.get(method)?;
        if ids.len() == 1 {
            Some(ids[0])
        } else {
            None
        }
    })
}

/// Build the global lock-order graph over the whole workspace.
pub fn build_graph(ws: &Workspace) -> (LockGraph, LockStats) {
    let r = Resolver::build(ws);
    let mut stats = LockStats::default();
    let mut all_facts: Vec<FnFacts> = Vec::with_capacity(r.fns.len());
    for fr in &r.fns {
        stats.functions += 1;
        all_facts.push(analyze_fn(&r, fr.file, fr.def, &mut stats));
    }

    // acquired1(f) = direct(f) ∪ direct(callees of f): one level of
    // transitivity, per the design — deep chains surface once the
    // intermediate functions are analyzed in their own right.
    let acquired1: Vec<BTreeSet<String>> = all_facts
        .iter()
        .map(|facts| {
            let mut set: BTreeSet<String> = facts.direct.iter().map(|(n, _)| n.clone()).collect();
            for (callee, _, _) in &facts.calls {
                set.extend(all_facts[*callee].direct.iter().map(|(n, _)| n.clone()));
            }
            set
        })
        .collect();

    let mut graph = LockGraph::default();
    for (id, facts) in all_facts.iter().enumerate() {
        let fr = &r.fns[id];
        let file = fr.file;
        let fname = fr.def.qual_name();
        for (node, _) in &facts.direct {
            graph.nodes.insert(node.clone());
        }
        let add = |graph: &mut LockGraph,
                   stats: &mut LockStats,
                   from: &str,
                   to: &str,
                   line: u32,
                   via: Option<String>| {
            if file.allows.waives("lock_edge", line as usize) {
                stats.edges_waived += 1;
                return;
            }
            graph.nodes.insert(from.to_string());
            graph.nodes.insert(to.to_string());
            graph
                .edges
                .entry((from.to_string(), to.to_string()))
                .or_insert_with(|| Site {
                    file: file.rel.clone(),
                    line,
                    func: fname.clone(),
                    via,
                });
        };
        for (from, to, line) in &facts.edges {
            add(&mut graph, &mut stats, from, to, *line, None);
        }
        for (callee, held, line) in &facts.calls {
            if held.is_empty() {
                continue;
            }
            for to in &acquired1[*callee] {
                for from in held {
                    add(
                        &mut graph,
                        &mut stats,
                        from,
                        to,
                        *line,
                        Some(r.fns[*callee].def.qual_name()),
                    );
                }
            }
        }
    }
    (graph, stats)
}

/// Find cycles: one representative per strongly-connected component with
/// an internal cycle, plus self-loops.
pub fn find_cycles(graph: &LockGraph) -> Vec<Cycle> {
    let mut cycles = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();

    for start in &graph.nodes {
        // DFS from each node, only keeping cycles that return to `start`
        // and whose node set is new. Small graphs; no need for Johnson's.
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.clone(), vec![start.clone()])];
        while let Some((n, path)) = stack.pop() {
            for s in graph.successors(&n) {
                if s == start {
                    let set: BTreeSet<String> = path.iter().cloned().collect();
                    if reported.insert(set) {
                        let mut nodes = path.clone();
                        nodes.push(start.clone());
                        let sites = nodes
                            .windows(2)
                            .map(|w| graph.edges[&(w[0].clone(), w[1].clone())].clone())
                            .collect();
                        cycles.push(Cycle { nodes, sites });
                    }
                } else if !path.iter().any(|p| p == s) && s > start.as_str() {
                    // Canonicalize: only walk nodes ordered after `start`,
                    // so each cycle is found from its smallest node once.
                    let mut p = path.clone();
                    p.push(s.to_string());
                    stack.push((s.to_string(), p));
                }
            }
        }
    }
    cycles
}
