//! A lightweight Rust lexer for the analysis passes.
//!
//! Unlike [`crate::strip_comments_and_strings`] (which blanks text so the
//! line-based lint rules cannot match inside it), the analyzer needs real
//! tokens: identifiers to follow field accesses and call sites, and
//! string-literal *contents* to read crashpoint and obskit event names.
//! The lexer is token-tree-shallow — it produces a flat token stream with
//! line numbers and leaves all nesting (braces, parens, generics) to the
//! consumers, which track depth themselves.
//!
//! Handled: line and nested block comments, string/raw-string/byte-string
//! literals, char literals vs lifetimes, numbers, identifiers, and
//! single-character punctuation. Escapes inside string literals are kept
//! verbatim (names never contain escapes).

/// Token classes the analysis passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal; `text` holds the contents without quotes.
    Str,
    /// Numeric literal (one digit run; `1.5` lexes as `1` `.` `5`).
    Num,
    /// Lifetime (`'a`); `text` holds the name without the quote.
    Lifetime,
    /// Char literal; contents without quotes.
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token: kind, text and the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True for an identifier token equal to `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }
}

/// Lex `src` into a flat token stream. Never fails: unterminated literals
/// run to end of input, unknown bytes are skipped.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let ident_char = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (content, next, newlines) = scan_string(src, i, 0);
                out.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                });
                line += newlines;
                i = next;
            }
            b'r' | b'b' if starts_string_literal(b, i) => {
                // Skip the prefix (`r`, `b`, `br`, `rb`) and any `#`s, then
                // scan the quoted body.
                let mut k = i;
                while k < b.len() && (b[k] == b'r' || b[k] == b'b') {
                    k += 1;
                }
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                let (content, next, newlines) = scan_string(src, k, hashes);
                out.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                });
                line += newlines;
                i = next;
            }
            b'\'' => {
                // Char literal vs lifetime, same discrimination the
                // stripper uses: a literal closes within a few chars.
                let rest = &b[i + 1..];
                if rest.first() == Some(&b'\\') {
                    let close = rest.iter().position(|&c| c == b'\'').unwrap_or(rest.len());
                    out.push(Tok {
                        kind: TokKind::Char,
                        text: src[i + 1..i + 1 + close].to_string(),
                        line,
                    });
                    i = (i + 2 + close).min(b.len());
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    out.push(Tok {
                        kind: TokKind::Char,
                        text: src[i + 1..i + 2].to_string(),
                        line,
                    });
                    i += 3;
                } else if rest.first().is_some_and(|&c| !c.is_ascii()) {
                    // Multi-byte char literal like '→'.
                    let s = &src[i + 1..];
                    match s
                        .char_indices()
                        .nth(1)
                        .filter(|&(idx, ch)| ch == '\'' && idx <= 4)
                    {
                        Some((idx, _)) => {
                            out.push(Tok {
                                kind: TokKind::Char,
                                text: s[..idx].to_string(),
                                line,
                            });
                            i += idx + 2;
                        }
                        None => i += 1,
                    }
                } else {
                    // Lifetime: consume the identifier.
                    let mut k = i + 1;
                    while k < b.len() && ident_char(b[k]) {
                        k += 1;
                    }
                    out.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i + 1..k].to_string(),
                        line,
                    });
                    i = k;
                }
            }
            c if c.is_ascii_digit() => {
                let mut k = i + 1;
                while k < b.len() && (ident_char(b[k])) {
                    k += 1;
                }
                out.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..k].to_string(),
                    line,
                });
                i = k;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut k = i + 1;
                while k < b.len() && ident_char(b[k]) {
                    k += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..k].to_string(),
                    line,
                });
                i = k;
            }
            c if c.is_ascii() => {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Non-ASCII outside literals (e.g. in doc text that leaked
                // past comment handling): skip the full character.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                i += ch_len;
            }
        }
    }
    out
}

/// True when position `i` (at `r` or `b`) starts a raw/byte string
/// literal rather than an identifier.
fn starts_string_literal(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false; // tail of a longer identifier
    }
    let mut k = i;
    let mut saw_prefix = false;
    while k < b.len() && (b[k] == b'r' || b[k] == b'b') && k - i < 2 {
        k += 1;
        saw_prefix = true;
    }
    if !saw_prefix {
        return false;
    }
    let mut h = k;
    while h < b.len() && b[h] == b'#' {
        h += 1;
    }
    // `b"…"` takes no hashes; only raw forms (`r`, `br`, `rb`) do.
    h < b.len() && b[h] == b'"' && (h == k || b[i..k].contains(&b'r'))
}

/// Scan a quoted body starting at the opening `"` at `open`. `hashes` is
/// the raw-string hash count (0 = escapes are processed). Returns the
/// contents, the index after the closing delimiter, and newlines crossed.
fn scan_string(src: &str, open: usize, hashes: usize) -> (String, usize, u32) {
    let b = src.as_bytes();
    debug_assert!(open < b.len() && b[open] == b'"');
    let mut j = open + 1;
    let raw = hashes > 0;
    let end;
    loop {
        if j >= b.len() {
            end = b.len();
            break;
        }
        if b[j] == b'"' {
            if !raw {
                end = j;
                break;
            }
            if b[j + 1..].iter().take(hashes).all(|&c| c == b'#') && b[j + 1..].len() >= hashes {
                end = j;
                break;
            }
            j += 1;
        } else if !raw && b[j] == b'\\' {
            j = (j + 2).min(b.len());
        } else {
            j += 1;
        }
    }
    let content = src[open + 1..end].to_string();
    let newlines = content.matches('\n').count() as u32;
    let next = (end + 1 + hashes).min(b.len());
    (content, next, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("fn f() {\n  x.lock();\n}\n");
        assert!(toks[0].is_ident("fn"));
        assert_eq!(toks[0].line, 1);
        let lock = toks.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn strings_keep_contents_comments_vanish() {
        let toks = texts("event!(\"wal.append\"); // comment \"not a string\"\n/* x */ y");
        assert!(toks.contains(&(TokKind::Str, "wal.append".into())));
        assert!(toks.iter().all(|(_, t)| t != "comment"));
        assert!(toks.contains(&(TokKind::Ident, "y".into())));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = texts(r##"let a = r#"he "quoted" re"#; let b = "es\"c";"##);
        assert!(toks.contains(&(TokKind::Str, "he \"quoted\" re".into())));
        assert!(toks.contains(&(TokKind::Str, "es\\\"c".into())));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"a\nb\";\nfn g() {}");
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 3);
    }
}
