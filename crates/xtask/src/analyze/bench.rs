//! Bench-coverage pass: keeps the bench binaries, their JSON twins and
//! the blessed baselines from drifting apart.
//!
//! 1. **Twin emission** — every binary under `crates/bench/src/bin/`
//!    must call `bench::emit_json` (directly or via a helper that the
//!    token scan still sees as an `emit_json(` call site). A bench that
//!    prints a table but never writes its machine-readable twin is
//!    invisible to `cargo xtask bench-gate`, so the perf gate silently
//!    loses that workload.
//! 2. **Stale baselines** — every `<stem>.json` under `bench_baselines/`
//!    (and each immediate subdirectory, e.g. the `ci/` fast-subset) must
//!    correspond to an existing bench binary, or be declared in that
//!    directory's `gate.toml` under `[gate] extra`. A baseline whose
//!    binary was renamed or deleted would otherwise pass the gate
//!    forever by comparing against nothing.
//! 3. **Missing baselines** — the *root* `bench_baselines/` directory is
//!    the full blessed set: every bench binary must have a baseline
//!    there (subdirectories are curated subsets and only get the stale
//!    check). A new bench with no blessed baseline is a workload the
//!    gate never guards.
//! 4. **Dangling extras** — a `[gate] extra` entry with no matching
//!    baseline file is leftover config and is flagged too.
//!
//! A missing `emit_json` call can be waived in-source with
//! `// analyze:allow(bench): reason`; the baseline checks point at JSON
//! files, which have no comments, so they are not waivable — fix the
//! tree instead.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use super::{SrcFile, Workspace};
use crate::benchgate::GateConfig;
use crate::{Rule, Violation};

/// One baseline directory as seen on disk: its root-relative path, the
/// `.json` stems it holds, the `[gate] extra` names its manifest
/// declares, and any manifest parse error (reported as a violation
/// rather than aborting the whole analysis).
#[derive(Debug, Clone, Default)]
pub struct BaselineDir {
    pub rel: String,
    pub stems: Vec<String>,
    pub extra: Vec<String>,
    pub manifest_error: Option<String>,
}

/// Scan `<root>/bench_baselines` and its immediate subdirectories.
/// Absence of the directory is not an error — a checkout without
/// blessed baselines simply has nothing to check.
pub fn load_baseline_dirs(root: &Path) -> std::io::Result<Vec<BaselineDir>> {
    let top = root.join("bench_baselines");
    if !top.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs = vec![("bench_baselines".to_string(), top.clone())];
    let mut subs: Vec<PathBuf> = std::fs::read_dir(&top)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subs.sort();
    for sub in subs {
        let name = sub
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        dirs.push((format!("bench_baselines/{name}"), sub));
    }
    let mut out = Vec::new();
    for (rel, dir) in dirs {
        let stems = crate::benchgate::baseline_names(&dir)?;
        let (extra, manifest_error) = match GateConfig::load(&dir) {
            Ok(cfg) => (cfg.extra, None),
            Err(e) => (Vec::new(), Some(e)),
        };
        out.push(BaselineDir {
            rel,
            stems,
            extra,
            manifest_error,
        });
    }
    Ok(out)
}

/// Bench binaries in the loaded workspace: `(bin_name, file)` for every
/// `crates/bench/src/bin/<bin_name>.rs`.
pub fn bench_bins(ws: &Workspace) -> Vec<(String, &SrcFile)> {
    ws.files
        .iter()
        .filter_map(|f| {
            let stem = f
                .rel
                .strip_prefix("crates/bench/src/bin/")?
                .strip_suffix(".rs")?;
            // Nested helper modules under bin/ are not binaries.
            if stem.contains('/') {
                return None;
            }
            Some((stem.to_string(), f))
        })
        .collect()
}

fn calls_emit_json(file: &SrcFile) -> bool {
    file.toks.iter().enumerate().any(|(j, t)| {
        t.is_ident("emit_json") && file.toks.get(j + 1).is_some_and(|n| n.is_punct('('))
    })
}

/// Pass 5: bench twins and baselines stay in lockstep with the bench
/// binaries (see the module docs for the four checks).
pub fn bench_pass(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let bins = bench_bins(ws);
    let bin_names: BTreeSet<&str> = bins.iter().map(|(n, _)| n.as_str()).collect();

    for (name, file) in &bins {
        if calls_emit_json(file) {
            continue;
        }
        let line = file
            .items
            .fns
            .iter()
            .find(|d| d.name == "main")
            .map_or(1, |d| d.line as usize);
        if file.allows.waives("bench", line) {
            continue;
        }
        out.push(Violation {
            file: PathBuf::from(&file.rel),
            line,
            rule: Rule::Bench,
            message: format!(
                "bench binary {name:?} never calls emit_json — its results are \
                 invisible to `cargo xtask bench-gate`"
            ),
        });
    }

    for dir in &ws.baseline_dirs {
        if let Some(err) = &dir.manifest_error {
            out.push(Violation {
                file: PathBuf::from(format!("{}/gate.toml", dir.rel)),
                line: 0,
                rule: Rule::Bench,
                message: format!("unreadable gate manifest: {err}"),
            });
        }
        for stem in &dir.stems {
            if bin_names.contains(stem.as_str()) || dir.extra.iter().any(|e| e == stem) {
                continue;
            }
            out.push(Violation {
                file: PathBuf::from(format!("{}/{stem}.json", dir.rel)),
                line: 0,
                rule: Rule::Bench,
                message: format!(
                    "stale baseline: no bench binary named {stem:?} and no \
                     `[gate] extra` entry in {}/gate.toml declares it",
                    dir.rel
                ),
            });
        }
        for extra in &dir.extra {
            if !dir.stems.iter().any(|s| s == extra) {
                out.push(Violation {
                    file: PathBuf::from(format!("{}/gate.toml", dir.rel)),
                    line: 0,
                    rule: Rule::Bench,
                    message: format!(
                        "[gate] extra entry {extra:?} has no {}/{extra}.json baseline",
                        dir.rel
                    ),
                });
            }
        }
        if dir.rel == "bench_baselines" {
            for name in &bin_names {
                if !dir.stems.iter().any(|s| s == name) {
                    out.push(Violation {
                        file: PathBuf::from(format!("crates/bench/src/bin/{name}.rs")),
                        line: 1,
                        rule: Rule::Bench,
                        message: format!(
                            "bench binary {name:?} has no blessed baseline under \
                             bench_baselines/ — run it and `cargo xtask bench-gate --bless`"
                        ),
                    });
                }
            }
        }
    }
    out
}
