//! bench-gate: the perf-regression gate over the benchmark JSON twins.
//!
//! Every harness under `crates/bench/src/bin` emits a machine-readable
//! obskit snapshot (`bench_results/<name>.json`). This module compares
//! those against the *blessed* copies under `bench_baselines/` with
//! per-metric tolerance bands from a small in-tree manifest
//! (`bench_baselines/gate.toml`, parsed by [`GateConfig::parse`] — a
//! hand-rolled TOML subset, no external deps), and renders a readable
//! per-metric delta report plus a `--json` twin for CI artifacts.
//!
//! Semantics:
//!
//! * **counters** drift-check in both directions (`counter_rel`): a
//!   counter that halved is as suspicious as one that doubled;
//! * **gauges** must land within `gauge_abs` of the baseline — residual
//!   levels (sessions not drained, pending slots leaked) are bugs, so
//!   the default band is exactly 0;
//! * **histograms** compare sample counts in both directions
//!   (`count_rel`) and p50/p95/p99 upward only (`quantile_rel`; a faster
//!   run is reported as *improved*, never failed). `quantile_floor`
//!   suppresses regressions whose absolute delta is below the floor —
//!   sub-microsecond jitter in a nanosecond histogram is not a signal;
//! * metrics present only in the current run are *new* (informational;
//!   blessing adopts them), metrics missing from the current run fail.
//!
//! Baselines change only through an explicit `--bless`, which copies the
//! current results over the baselines verbatim.
//!
//! `--series` validates the JSON-lines time series the streaming
//! exporter ([`obskit::stream`]) writes during long soaks: schema and
//! line-by-line parseability, strictly sequential interval numbers,
//! non-negative counter/histogram deltas, and the manifest's gauge
//! invariants — `monotone` gauges never decrease, `bounded` gauges never
//! exceed a cap named in the series header meta, `zero_final` gauges are
//! back to zero by the final interval.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use obskit::json::Json;

// ---------------------------------------------------------------------------
// Manifest (gate.toml)
// ---------------------------------------------------------------------------

/// Tolerance bands; every field optional so bench- and metric-level
/// overrides can shadow individual knobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tol {
    /// Relative band for counters, both directions (0.5 = ±50%).
    pub counter_rel: Option<f64>,
    /// Absolute band for gauges.
    pub gauge_abs: Option<f64>,
    /// Relative band for histogram p50/p95/p99, upward only
    /// (3.0 = up to 4× the baseline passes).
    pub quantile_rel: Option<f64>,
    /// Relative band for histogram sample counts, both directions.
    pub count_rel: Option<f64>,
    /// Absolute floor under which a quantile increase is never a
    /// regression (nanoseconds for duration histograms).
    pub quantile_floor: Option<f64>,
}

/// Hard defaults when neither the manifest default nor an override sets
/// a knob.
const HARD: Tol = Tol {
    counter_rel: Some(0.5),
    gauge_abs: Some(0.0),
    quantile_rel: Some(3.0),
    count_rel: Some(0.5),
    quantile_floor: Some(0.0),
};

impl Tol {
    fn overlay(&self, over: &Tol) -> Tol {
        Tol {
            counter_rel: over.counter_rel.or(self.counter_rel),
            gauge_abs: over.gauge_abs.or(self.gauge_abs),
            quantile_rel: over.quantile_rel.or(self.quantile_rel),
            count_rel: over.count_rel.or(self.count_rel),
            quantile_floor: over.quantile_floor.or(self.quantile_floor),
        }
    }

    fn set(&mut self, key: &str, v: f64) -> bool {
        match key {
            "counter_rel" => self.counter_rel = Some(v),
            "gauge_abs" => self.gauge_abs = Some(v),
            "quantile_rel" => self.quantile_rel = Some(v),
            "count_rel" => self.count_rel = Some(v),
            "quantile_floor" => self.quantile_floor = Some(v),
            _ => return false,
        }
        true
    }
}

/// Per-benchmark configuration: tolerance overrides, skip patterns, and
/// per-metric overrides.
#[derive(Debug, Clone, Default)]
pub struct BenchCfg {
    pub tol: Tol,
    /// Metric-name patterns to exclude from comparison (exact, or a
    /// trailing-`*` prefix like `"sqlengine.*"`).
    pub skip: Vec<String>,
    /// Per-metric tolerance overrides (exact names).
    pub metrics: BTreeMap<String, Tol>,
}

/// Invariants for `--series` validation.
#[derive(Debug, Clone)]
pub struct SeriesCfg {
    /// Minimum number of interval lines a series must contain.
    pub min_intervals: u64,
    /// Gauges that must read 0 in the final interval (if present at all).
    pub zero_final: Vec<String>,
    /// Gauges that must never decrease across intervals (high-water
    /// marks).
    pub monotone: Vec<String>,
    /// `(gauge, meta_key)`: the gauge must never exceed the numeric cap
    /// stored under `meta_key` in the series header. Skipped when the
    /// header has no such key (workloads without that cap).
    pub bounded: Vec<(String, String)>,
}

impl Default for SeriesCfg {
    fn default() -> SeriesCfg {
        SeriesCfg {
            min_intervals: 1,
            zero_final: Vec::new(),
            monotone: Vec::new(),
            bounded: Vec::new(),
        }
    }
}

/// The parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct GateConfig {
    pub default: Tol,
    pub benches: BTreeMap<String, BenchCfg>,
    pub series: SeriesCfg,
    /// Baseline names that do not correspond to a bench binary (e.g.
    /// snapshots exported by CI test steps) — consumed by the
    /// `cargo xtask analyze` stale-baseline pass.
    pub extra: Vec<String>,
}

/// A parsed manifest value.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
}

impl Val {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str_list(&self) -> Option<Vec<String>> {
        match self {
            Val::Arr(items) => items
                .iter()
                .map(|v| match v {
                    Val::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

fn parse_key(s: &str) -> Result<(String, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('"') {
        let end = rest.find('"').ok_or("unterminated quoted key")?;
        Ok((rest[..end].to_string(), &rest[end + 1..]))
    } else {
        let end = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'))
            .unwrap_or(s.len());
        if end == 0 {
            return Err(format!("expected key at {s:?}"));
        }
        Ok((s[..end].to_string(), &s[end..]))
    }
}

fn parse_val(s: &str) -> Result<Val, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let end = rest.find('"').ok_or("unterminated string value")?;
        if !rest[end + 1..].trim().is_empty() {
            return Err(format!("trailing garbage after string in {s:?}"));
        }
        return Ok(Val::Str(rest[..end].to_string()));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array in {s:?}"))?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let item_end = if let Some(inner) = rest.strip_prefix('"') {
                // A quoted item may contain commas.
                inner
                    .find('"')
                    .map(|i| i + 2)
                    .ok_or("unterminated string in array")?
            } else {
                rest.find(',').unwrap_or(rest.len())
            };
            items.push(parse_val(&rest[..item_end])?);
            rest = rest[item_end..].trim_start();
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        }
        return Ok(Val::Arr(items));
    }
    s.parse::<f64>()
        .map(Val::Num)
        .map_err(|_| format!("bad value {s:?} (expected number, \"string\" or [array])"))
}

/// Split a `[section.path."with.quoted".segments]` header.
fn parse_section(line: &str) -> Result<Vec<String>, String> {
    let inner = line
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("bad section header {line:?}"))?;
    let mut segs = Vec::new();
    let mut rest = inner.trim();
    loop {
        let (seg, after) = if let Some(r) = rest.strip_prefix('"') {
            let end = r.find('"').ok_or("unterminated quoted segment")?;
            (r[..end].to_string(), r[end + 1..].trim_start())
        } else {
            let end = r_ident_end(rest);
            if end == 0 {
                return Err(format!("empty segment in section {line:?}"));
            }
            (rest[..end].to_string(), rest[end..].trim_start())
        };
        segs.push(seg);
        if after.is_empty() {
            return Ok(segs);
        }
        rest = after
            .strip_prefix('.')
            .ok_or_else(|| format!("expected '.' between segments in {line:?}"))?
            .trim_start();
    }
}

fn r_ident_end(s: &str) -> usize {
    s.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .unwrap_or(s.len())
}

impl GateConfig {
    /// Parse a manifest. Unknown sections or keys are hard errors: a
    /// typo'd tolerance that silently parses is a gate that silently
    /// stopped gating.
    pub fn parse(text: &str) -> Result<GateConfig, String> {
        let mut cfg = GateConfig::default();
        let mut section: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            // Strip comments (the manifest never puts '#' inside strings).
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                section = parse_section(line).map_err(|e| format!("line {lineno}: {e}"))?;
                let known = matches!(
                    section_kind(&section),
                    Some(SectionKind::Default)
                        | Some(SectionKind::Series)
                        | Some(SectionKind::Gate)
                        | Some(SectionKind::Bench(_))
                        | Some(SectionKind::Metric(_, _))
                );
                if !known {
                    return Err(format!(
                        "line {lineno}: unknown section [{}] (expected default, series, gate, \
                         bench.<name> or bench.<name>.metric.\"<metric>\")",
                        section.join(".")
                    ));
                }
                continue;
            }
            let (key, rest) = parse_key(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(format!("line {lineno}: expected '=' after key {key:?}"));
            };
            let val = parse_val(rest).map_err(|e| format!("line {lineno}: {e}"))?;
            cfg.apply(&section, &key, val)
                .map_err(|e| format!("line {lineno}: {e}"))?;
        }
        Ok(cfg)
    }

    /// Load `<dir>/gate.toml`; a missing manifest yields the defaults.
    pub fn load(baselines: &Path) -> Result<GateConfig, String> {
        let path = baselines.join("gate.toml");
        if !path.exists() {
            return Ok(GateConfig::default());
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        GateConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    fn apply(&mut self, section: &[String], key: &str, val: Val) -> Result<(), String> {
        let bad_key = || format!("unknown key {key:?} in [{}]", section.join("."));
        let num = |v: &Val| v.as_f64().ok_or_else(|| format!("{key} must be a number"));
        match section_kind(section) {
            Some(SectionKind::Default) => {
                if !self.default.set(key, num(&val)?) {
                    return Err(bad_key());
                }
            }
            Some(SectionKind::Series) => match key {
                "min_intervals" => self.series.min_intervals = num(&val)? as u64,
                "zero_final" => {
                    self.series.zero_final = val
                        .as_str_list()
                        .ok_or("zero_final must be a string array")?;
                }
                "monotone" => {
                    self.series.monotone =
                        val.as_str_list().ok_or("monotone must be a string array")?;
                }
                "bounded" => {
                    let entries = val.as_str_list().ok_or("bounded must be a string array")?;
                    self.series.bounded = entries
                        .iter()
                        .map(|e| {
                            let (g, m) = e.split_once("<=").ok_or_else(|| {
                                format!("bounded entry {e:?} needs `gauge <= meta.key`")
                            })?;
                            let m = m.trim().strip_prefix("meta.").ok_or_else(|| {
                                format!("bounded cap in {e:?} must be `meta.<key>`")
                            })?;
                            Ok((g.trim().to_string(), m.to_string()))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                }
                _ => return Err(bad_key()),
            },
            Some(SectionKind::Gate) => match key {
                "extra" => {
                    self.extra = val.as_str_list().ok_or("extra must be a string array")?;
                }
                _ => return Err(bad_key()),
            },
            Some(SectionKind::Bench(name)) => {
                let bench = self.benches.entry(name.to_string()).or_default();
                if key == "skip" {
                    bench.skip = val.as_str_list().ok_or("skip must be a string array")?;
                } else if !bench.tol.set(key, num(&val)?) {
                    return Err(bad_key());
                }
            }
            Some(SectionKind::Metric(name, metric)) => {
                let bench = self.benches.entry(name.to_string()).or_default();
                let tol = bench.metrics.entry(metric.to_string()).or_default();
                if !tol.set(key, num(&val)?) {
                    return Err(bad_key());
                }
            }
            None => {
                return Err(if section.is_empty() {
                    format!("key {key:?} outside any section")
                } else {
                    format!("unknown section [{}]", section.join("."))
                });
            }
        }
        Ok(())
    }

    /// The effective tolerances for one metric of one bench.
    fn tol_for(&self, bench: &str, metric: &str) -> Tol {
        let mut t = HARD.overlay(&self.default);
        if let Some(b) = self.benches.get(bench) {
            t = t.overlay(&b.tol);
            if let Some(m) = b.metrics.get(metric) {
                t = t.overlay(m);
            }
        }
        t
    }

    fn skipped(&self, bench: &str, metric: &str) -> bool {
        self.benches
            .get(bench)
            .is_some_and(|b| b.skip.iter().any(|p| pat_matches(p, metric)))
    }
}

enum SectionKind<'a> {
    Default,
    Series,
    Gate,
    Bench(&'a str),
    Metric(&'a str, &'a str),
}

fn section_kind(section: &[String]) -> Option<SectionKind<'_>> {
    match section {
        [a] if a == "default" => Some(SectionKind::Default),
        [a] if a == "series" => Some(SectionKind::Series),
        [a] if a == "gate" => Some(SectionKind::Gate),
        [a, name] if a == "bench" => Some(SectionKind::Bench(name)),
        [a, name, b, metric] if a == "bench" && b == "metric" => {
            Some(SectionKind::Metric(name, metric))
        }
        _ => None,
    }
}

fn pat_matches(pat: &str, name: &str) -> bool {
    match pat.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pat == name,
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within band.
    Ok,
    /// A quantile got meaningfully better (outside the band, downward).
    Improved,
    /// Present in the current run only; blessing will adopt it.
    New,
    /// Outside the band in the failing direction.
    Regressed,
    /// The baseline has it, the current run lost it.
    Missing,
    /// Excluded by a manifest skip pattern.
    Skipped,
}

impl Status {
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::New => "new",
            Status::Regressed => "REGRESSED",
            Status::Missing => "MISSING",
            Status::Skipped => "skipped",
        }
    }

    fn failing(self) -> bool {
        matches!(self, Status::Regressed | Status::Missing)
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub bench: String,
    /// `counter <name>`, `gauge <name>`, or `<name> p50/p95/p99/count`.
    pub metric: String,
    pub kind: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// The band the comparison used (relative, except `gauge`: absolute).
    pub band: f64,
    pub status: Status,
}

/// The full gate outcome.
#[derive(Debug, Default)]
pub struct GateReport {
    pub deltas: Vec<MetricDelta>,
    /// Hard errors: unreadable/malformed files, missing current results.
    pub errors: Vec<String>,
    /// Non-failing observations (results without baselines, bless log).
    pub notes: Vec<String>,
    /// `--series` outcomes: `(path, errors)`.
    pub series: Vec<(String, Vec<String>)>,
}

impl GateReport {
    pub fn failed(&self) -> bool {
        !self.errors.is_empty()
            || self.deltas.iter().any(|d| d.status.failing())
            || self.series.iter().any(|(_, errs)| !errs.is_empty())
    }
}

fn load_snapshot(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc =
        Json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    if doc.get("obskit").and_then(Json::as_f64) != Some(1.0) {
        return Err(format!(
            "{} is not an obskit v1 snapshot (missing/wrong \"obskit\" tag)",
            path.display()
        ));
    }
    Ok(doc)
}

fn num_map(doc: &Json, key: &str) -> BTreeMap<String, f64> {
    doc.get(key)
        .and_then(Json::as_obj)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

/// Histogram fields the gate compares.
fn hist_fields(h: &Json) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for k in ["count", "p50", "p95", "p99"] {
        if let Some(v) = h.get(k).and_then(Json::as_f64) {
            out.push((
                match k {
                    "count" => "count",
                    "p50" => "p50",
                    "p95" => "p95",
                    _ => "p99",
                },
                v,
            ));
        }
    }
    out
}

/// Compare one bench's current snapshot against its baseline.
pub fn compare_bench(
    bench: &str,
    baseline: &Json,
    current: &Json,
    cfg: &GateConfig,
) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    let mut push = |metric: &str, kind: &'static str, b: f64, c: f64, band: f64, status: Status| {
        out.push(MetricDelta {
            bench: bench.to_string(),
            metric: metric.to_string(),
            kind,
            baseline: b,
            current: c,
            band,
            status,
        });
    };

    // Counters: both directions, relative.
    let (bc, cc) = (num_map(baseline, "counters"), num_map(current, "counters"));
    for (name, &b) in &bc {
        let tol = cfg.tol_for(bench, name);
        let band = tol.counter_rel.unwrap_or(0.5);
        if cfg.skipped(bench, name) {
            push(
                name,
                "counter",
                b,
                cc.get(name).copied().unwrap_or(0.0),
                band,
                Status::Skipped,
            );
            continue;
        }
        let Some(&c) = cc.get(name) else {
            push(name, "counter", b, 0.0, band, Status::Missing);
            continue;
        };
        let rel = (c - b).abs() / b.max(1.0);
        let status = if rel <= band {
            Status::Ok
        } else {
            Status::Regressed
        };
        push(name, "counter", b, c, band, status);
    }
    for (name, &c) in &cc {
        if !bc.contains_key(name) && !cfg.skipped(bench, name) {
            push(name, "counter", 0.0, c, 0.0, Status::New);
        }
    }

    // Gauges: absolute band.
    let (bg, cg) = (num_map(baseline, "gauges"), num_map(current, "gauges"));
    for (name, &b) in &bg {
        let tol = cfg.tol_for(bench, name);
        let band = tol.gauge_abs.unwrap_or(0.0);
        if cfg.skipped(bench, name) {
            push(
                name,
                "gauge",
                b,
                cg.get(name).copied().unwrap_or(0.0),
                band,
                Status::Skipped,
            );
            continue;
        }
        let Some(&c) = cg.get(name) else {
            push(name, "gauge", b, 0.0, band, Status::Missing);
            continue;
        };
        let status = if (c - b).abs() <= band {
            Status::Ok
        } else {
            Status::Regressed
        };
        push(name, "gauge", b, c, band, status);
    }
    for (name, &c) in &cg {
        if !bg.contains_key(name) && !cfg.skipped(bench, name) {
            push(name, "gauge", 0.0, c, 0.0, Status::New);
        }
    }

    // Histograms: count both ways, quantiles upward only.
    let empty = BTreeMap::new();
    let bh = baseline
        .get("histograms")
        .and_then(Json::as_obj)
        .unwrap_or(&empty);
    let ch = current
        .get("histograms")
        .and_then(Json::as_obj)
        .unwrap_or(&empty);
    for (name, bhist) in bh {
        let tol = cfg.tol_for(bench, name);
        if cfg.skipped(bench, name) {
            push(name, "histogram", 0.0, 0.0, 0.0, Status::Skipped);
            continue;
        }
        let Some(chist) = ch.get(name) else {
            push(name, "histogram", 0.0, 0.0, 0.0, Status::Missing);
            continue;
        };
        let bfields: BTreeMap<&str, f64> = hist_fields(bhist).into_iter().collect();
        let cfields: BTreeMap<&str, f64> = hist_fields(chist).into_iter().collect();
        for (kind, &b) in &bfields {
            let c = cfields.get(kind).copied();
            if *kind == "count" {
                let band = tol.count_rel.unwrap_or(0.5);
                let c = c.unwrap_or(0.0);
                let rel = (c - b).abs() / b.max(1.0);
                let status = if rel <= band {
                    Status::Ok
                } else {
                    Status::Regressed
                };
                push(name, "count", b, c, band, status);
            } else {
                let band = tol.quantile_rel.unwrap_or(3.0);
                let floor = tol.quantile_floor.unwrap_or(0.0);
                let Some(c) = c else {
                    // Quantile vanished: the count comparison above already
                    // flags the empty histogram; skip the quantile row.
                    continue;
                };
                let status = if c > b * (1.0 + band) && (c - b) > floor {
                    Status::Regressed
                } else if c * (1.0 + band) < b && (b - c) > floor {
                    Status::Improved
                } else {
                    Status::Ok
                };
                push(name, kind, b, c, band, status);
            }
        }
    }
    for (name, chist) in ch {
        if !bh.contains_key(name) && !cfg.skipped(bench, name) {
            let c = chist.get("count").and_then(Json::as_f64).unwrap_or(0.0);
            push(name, "count", 0.0, c, 0.0, Status::New);
        }
    }
    out
}

/// Baseline JSON files directly under `dir` (no recursion — `ci/` is its
/// own gate), sorted by name.
pub fn baseline_names(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    for e in std::fs::read_dir(dir)? {
        let p = e?.path();
        if p.is_file() && p.extension().and_then(|x| x.to_str()) == Some("json") {
            if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Run the gate: every baseline under `baselines` is compared against
/// `results/<name>.json`.
pub fn run_gate(results: &Path, baselines: &Path, cfg: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let names = match baseline_names(baselines) {
        Ok(n) => n,
        Err(e) => {
            report.errors.push(format!(
                "cannot list baselines {}: {e}",
                baselines.display()
            ));
            return report;
        }
    };
    if names.is_empty() {
        report.errors.push(format!(
            "no baselines under {} — nothing to gate",
            baselines.display()
        ));
        return report;
    }
    for name in &names {
        let bpath = baselines.join(format!("{name}.json"));
        let cpath = results.join(format!("{name}.json"));
        let baseline = match load_snapshot(&bpath) {
            Ok(d) => d,
            Err(e) => {
                report.errors.push(e);
                continue;
            }
        };
        if !cpath.exists() {
            report.errors.push(format!(
                "baseline {name} has no current result {} — run the bench or drop the stale \
                 baseline",
                cpath.display()
            ));
            continue;
        }
        let current = match load_snapshot(&cpath) {
            Ok(d) => d,
            Err(e) => {
                report.errors.push(e);
                continue;
            }
        };
        report
            .deltas
            .extend(compare_bench(name, &baseline, &current, cfg));
    }
    // Current results that have no baseline yet: informational.
    if let Ok(current_names) = baseline_names(results) {
        for n in current_names {
            if !names.contains(&n) {
                report.notes.push(format!(
                    "result {n}.json has no baseline — bless to adopt it"
                ));
            }
        }
    }
    report
}

/// `--bless`: copy every `results/*.json` over `baselines/<name>.json`.
/// Returns the blessed names.
pub fn bless(results: &Path, baselines: &Path) -> Result<Vec<String>, String> {
    let names = baseline_names(results)
        .map_err(|e| format!("cannot list results {}: {e}", results.display()))?;
    if names.is_empty() {
        return Err(format!(
            "no results under {} — nothing to bless",
            results.display()
        ));
    }
    std::fs::create_dir_all(baselines)
        .map_err(|e| format!("cannot create {}: {e}", baselines.display()))?;
    for name in &names {
        let from = results.join(format!("{name}.json"));
        // Validate before blessing: a malformed result must never become
        // the baseline the gate trusts.
        load_snapshot(&from)?;
        let to = baselines.join(format!("{name}.json"));
        std::fs::copy(&from, &to)
            .map_err(|e| format!("cannot bless {} -> {}: {e}", from.display(), to.display()))?;
    }
    Ok(names)
}

// ---------------------------------------------------------------------------
// Series validation
// ---------------------------------------------------------------------------

/// Validate one JSON-lines series file against the manifest invariants.
/// Returns the violations (empty = valid).
pub fn check_series(path: &Path, cfg: &SeriesCfg) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read series {}: {e}", path.display())],
    };
    check_series_text(&text, cfg, &path.display().to_string())
}

/// Same, over in-memory text (fixture tests).
pub fn check_series_text(text: &str, cfg: &SeriesCfg, origin: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return vec![format!("{origin}: empty series file")];
    };
    let header = match Json::parse(header) {
        Ok(h) => h,
        Err(e) => return vec![format!("{origin}:1: header is not valid JSON: {e}")],
    };
    if header.get("obskit_series").and_then(Json::as_f64) != Some(1.0) {
        return vec![format!(
            "{origin}:1: missing \"obskit_series\": 1 header tag"
        )];
    }
    let meta: BTreeMap<String, f64> = header
        .get("meta")
        .and_then(Json::as_obj)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| {
                    v.as_str()
                        .and_then(|s| s.parse::<f64>().ok())
                        .map(|n| (k.clone(), n))
                })
                .collect()
        })
        .unwrap_or_default();

    let mut intervals = 0u64;
    let mut last_gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut monotone_prev: BTreeMap<String, f64> = BTreeMap::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = match Json::parse(line) {
            Ok(d) => d,
            Err(e) => {
                errs.push(format!(
                    "{origin}:{lineno}: interval is not valid JSON: {e}"
                ));
                continue;
            }
        };
        intervals += 1;
        match doc.get("seq").and_then(Json::as_f64) {
            Some(s) if s == intervals as f64 => {}
            other => errs.push(format!(
                "{origin}:{lineno}: seq {other:?} breaks the 1,2,3,… interval sequence \
                 (expected {intervals})"
            )),
        }
        for (name, v) in num_map(&doc, "counters") {
            if v < 0.0 {
                errs.push(format!(
                    "{origin}:{lineno}: counter delta {name:?} is negative ({v}) — monotone \
                     counters can only grow"
                ));
            }
        }
        if let Some(hists) = doc.get("histograms").and_then(Json::as_obj) {
            for (name, h) in hists {
                for (k, v) in hist_fields(h) {
                    if k == "count" && v < 0.0 {
                        errs.push(format!(
                            "{origin}:{lineno}: histogram delta {name:?} has negative count ({v})"
                        ));
                    }
                }
            }
        }
        let gauges = num_map(&doc, "gauges");
        for g in &cfg.monotone {
            if let (Some(&prev), Some(&cur)) = (monotone_prev.get(g), gauges.get(g)) {
                if cur < prev {
                    errs.push(format!(
                        "{origin}:{lineno}: monotone gauge {g:?} decreased ({prev} -> {cur})"
                    ));
                }
            }
            if let Some(&cur) = gauges.get(g) {
                monotone_prev.insert(g.clone(), cur);
            }
        }
        for (g, meta_key) in &cfg.bounded {
            if let (Some(&cur), Some(&cap)) = (gauges.get(g), meta.get(meta_key)) {
                if cur > cap {
                    errs.push(format!(
                        "{origin}:{lineno}: gauge {g:?} = {cur} exceeds meta.{meta_key} cap {cap}"
                    ));
                }
            }
        }
        last_gauges = gauges;
    }
    if intervals < cfg.min_intervals {
        errs.push(format!(
            "{origin}: only {intervals} interval(s); the series gate requires at least {}",
            cfg.min_intervals
        ));
    }
    for g in &cfg.zero_final {
        if let Some(&v) = last_gauges.get(g) {
            if v != 0.0 {
                errs.push(format!(
                    "{origin}: gauge {g:?} is {v} in the final interval — must drain to zero"
                ));
            }
        }
    }
    errs
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn pct(delta: f64, base: f64) -> String {
    let rel = 100.0 * (delta / base.max(1e-12));
    format!("{rel:+.1}%")
}

/// Human-readable delta report: failures in full, healthy benches as a
/// one-line summary each.
pub fn render_text(report: &GateReport) -> String {
    let mut out = String::new();
    let mut by_bench: BTreeMap<&str, Vec<&MetricDelta>> = BTreeMap::new();
    for d in &report.deltas {
        by_bench.entry(&d.bench).or_default().push(d);
    }
    for (bench, deltas) in &by_bench {
        let count = |s: Status| deltas.iter().filter(|d| d.status == s).count();
        let _ = writeln!(
            out,
            "{bench}: {} compared — {} ok, {} improved, {} new, {} skipped, {} regressed, \
             {} missing",
            deltas.len(),
            count(Status::Ok),
            count(Status::Improved),
            count(Status::New),
            count(Status::Skipped),
            count(Status::Regressed),
            count(Status::Missing),
        );
        for d in deltas {
            if d.status.failing() || d.status == Status::Improved {
                let band = if d.kind == "gauge" {
                    format!("band ±{}", d.band)
                } else if d.kind == "counter" || d.kind == "count" {
                    format!("band ±{:.0}%", d.band * 100.0)
                } else {
                    format!("band +{:.0}%", d.band * 100.0)
                };
                let _ = writeln!(
                    out,
                    "  {:9} {} {}: {} -> {} ({}, {band})",
                    d.status.name(),
                    d.kind,
                    d.metric,
                    d.baseline,
                    d.current,
                    pct(d.current - d.baseline, d.baseline),
                );
            }
        }
    }
    for (path, errs) in &report.series {
        if errs.is_empty() {
            let _ = writeln!(out, "series {path}: ok");
        } else {
            let _ = writeln!(out, "series {path}: {} violation(s)", errs.len());
            for e in errs {
                let _ = writeln!(out, "  {e}");
            }
        }
    }
    for n in &report.notes {
        let _ = writeln!(out, "note: {n}");
    }
    for e in &report.errors {
        let _ = writeln!(out, "error: {e}");
    }
    let _ = writeln!(
        out,
        "bench-gate: {}",
        if report.failed() { "FAILED" } else { "clean" }
    );
    out
}

fn jstr(s: &str) -> String {
    obskit::export::json_str(s)
}

/// Machine-readable report, schema-versioned like the other artifacts.
pub fn render_json(report: &GateReport) -> String {
    let mut out = String::from("{\"bench_gate\":1,");
    let _ = write!(out, "\"failed\":{},", report.failed());
    out.push_str("\"deltas\":[");
    for (i, d) in report.deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"bench\":{},\"metric\":{},\"kind\":{},\"baseline\":{},\"current\":{},\
             \"band\":{},\"status\":{}}}",
            jstr(&d.bench),
            jstr(&d.metric),
            jstr(d.kind),
            d.baseline,
            d.current,
            d.band,
            jstr(d.status.name())
        );
    }
    out.push_str("],\"series\":[");
    for (i, (path, errs)) in report.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"path\":{},\"errors\":[", jstr(path));
        for (j, e) in errs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&jstr(e));
        }
        out.push_str("]}");
    }
    out.push_str("],\"notes\":[");
    for (i, n) in report.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&jstr(n));
    }
    out.push_str("],\"errors\":[");
    for (i, e) in report.errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&jstr(e));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn snap(counters: &str, gauges: &str, hists: &str) -> String {
        format!(
            "{{\"obskit\": 1, \"meta\": {{\"bench\": \"demo\"}}, \"counters\": {{{counters}}}, \
             \"gauges\": {{{gauges}}}, \"histograms\": {{{hists}}}, \"events\": []}}"
        )
    }

    fn hist(count: u64, p50: u64, p95: u64, p99: u64) -> String {
        format!(
            "\"lat\": {{\"count\": {count}, \"sum\": 0, \"min\": 1, \"max\": {p99}, \
             \"mean\": 1.0, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"buckets\": []}}"
        )
    }

    fn parse(doc: &str) -> Json {
        Json::parse(doc).expect("fixture JSON")
    }

    fn statuses(deltas: &[MetricDelta]) -> BTreeMap<String, Status> {
        deltas
            .iter()
            .map(|d| (format!("{} {}", d.kind, d.metric), d.status))
            .collect()
    }

    #[test]
    fn manifest_parses_every_section_kind() {
        let cfg = GateConfig::parse(
            r#"
            # comment
            [default]
            counter_rel = 0.25
            quantile_rel = 2.0

            [series]
            min_intervals = 3
            zero_final = ["sessions.active", "admission.pending"]
            monotone = ["admission.pending.peak"]
            bounded = ["admission.pending.peak <= meta.pending_cap"]

            [gate]
            extra = ["ci_group_commit"]

            [bench.session_scale]
            skip = ["sqlengine.*"]
            quantile_rel = 7.0

            [bench.session_scale.metric."session_scale.admit"]
            quantile_rel = 1.0
            "#,
        )
        .expect("manifest parses");
        assert_eq!(cfg.default.counter_rel, Some(0.25));
        assert_eq!(cfg.series.min_intervals, 3);
        assert_eq!(cfg.series.zero_final.len(), 2);
        assert_eq!(
            cfg.series.bounded,
            vec![(
                "admission.pending.peak".to_string(),
                "pending_cap".to_string()
            )]
        );
        assert_eq!(cfg.extra, vec!["ci_group_commit".to_string()]);
        // Resolution order: hard default -> [default] -> bench -> metric.
        let t = cfg.tol_for("session_scale", "session_scale.admit");
        assert_eq!(t.quantile_rel, Some(1.0));
        assert_eq!(t.counter_rel, Some(0.25));
        let t = cfg.tol_for("session_scale", "other");
        assert_eq!(t.quantile_rel, Some(7.0));
        let t = cfg.tol_for("table1_power", "other");
        assert_eq!(t.quantile_rel, Some(2.0));
        assert!(cfg.skipped("session_scale", "sqlengine.wal.flush"));
        assert!(!cfg.skipped("session_scale", "wal.flush.batch_size"));
        assert!(!cfg.skipped("table1_power", "sqlengine.wal.flush"));
    }

    #[test]
    fn manifest_rejects_typos_loudly() {
        for bad in [
            "[default]\ncounter_rell = 0.5",
            "[defaults]\ncounter_rel = 0.5",
            "[bench.x]\ncounter_rel = \"high\"",
            "[series]\nbounded = [\"no-operator\"]",
            "counter_rel = 0.5",
            "[bench.x.metric]\nrel = 1",
        ] {
            assert!(GateConfig::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn identical_snapshots_pass_clean() {
        let doc = parse(&snap("\"c\": 100", "\"g\": 0", &hist(10, 100, 180, 200)));
        let deltas = compare_bench("demo", &doc, &doc, &GateConfig::default());
        assert!(deltas.iter().all(|d| d.status == Status::Ok), "{deltas:?}");
        assert!(!deltas.is_empty());
    }

    #[test]
    fn counter_band_edges_are_inclusive() {
        let cfg = GateConfig::default(); // counter_rel 0.5
        let base = parse(&snap("\"c\": 100", "", ""));
        // 150 sits exactly on the band: passes.
        let on_edge = parse(&snap("\"c\": 150", "", ""));
        let d = compare_bench("demo", &base, &on_edge, &cfg);
        assert_eq!(statuses(&d)["counter c"], Status::Ok);
        // 151 is outside; so is halving beyond the band (both directions).
        let over = parse(&snap("\"c\": 151", "", ""));
        let d = compare_bench("demo", &base, &over, &cfg);
        assert_eq!(statuses(&d)["counter c"], Status::Regressed);
        let under = parse(&snap("\"c\": 40", "", ""));
        let d = compare_bench("demo", &base, &under, &cfg);
        assert_eq!(statuses(&d)["counter c"], Status::Regressed);
    }

    #[test]
    fn quantile_regressions_fail_upward_only() {
        let cfg = GateConfig::default(); // quantile_rel 3.0 => 4x passes
        let base = parse(&snap("", "", &hist(10, 100, 180, 200)));
        let fast = parse(&snap("", "", &hist(10, 10, 20, 30)));
        let d = compare_bench("demo", &base, &fast, &cfg);
        assert_eq!(
            statuses(&d)["p99 lat"],
            Status::Improved,
            "faster never fails"
        );
        let on_edge = parse(&snap("", "", &hist(10, 100, 180, 800)));
        let d = compare_bench("demo", &base, &on_edge, &cfg);
        assert_eq!(statuses(&d)["p99 lat"], Status::Ok);
        let slow = parse(&snap("", "", &hist(10, 100, 180, 801)));
        let d = compare_bench("demo", &base, &slow, &cfg);
        assert_eq!(statuses(&d)["p99 lat"], Status::Regressed);
        assert_eq!(statuses(&d)["p50 lat"], Status::Ok);
    }

    #[test]
    fn quantile_floor_suppresses_jitter() {
        let mut cfg = GateConfig::default();
        cfg.default.quantile_floor = Some(1000.0);
        let base = parse(&snap("", "", &hist(10, 50, 60, 70)));
        let noisy = parse(&snap("", "", &hist(10, 400, 500, 600)));
        let d = compare_bench("demo", &base, &noisy, &cfg);
        assert!(
            d.iter().all(|d| d.status != Status::Regressed),
            "sub-floor deltas must not regress: {d:?}"
        );
    }

    #[test]
    fn lost_metrics_fail_and_new_metrics_inform() {
        let cfg = GateConfig::default();
        let base = parse(&snap("\"old\": 5", "", ""));
        let cur = parse(&snap("\"fresh\": 5", "", ""));
        let s = statuses(&compare_bench("demo", &base, &cur, &cfg));
        assert_eq!(s["counter old"], Status::Missing);
        assert_eq!(s["counter fresh"], Status::New);
    }

    #[test]
    fn skip_patterns_exclude_noise() {
        let mut cfg = GateConfig::default();
        cfg.benches.entry("demo".into()).or_default().skip = vec!["noise.*".into()];
        let base = parse(&snap("\"noise.c\": 100", "", ""));
        let cur = parse(&snap("\"noise.c\": 100000", "", ""));
        let d = compare_bench("demo", &base, &cur, &cfg);
        assert_eq!(statuses(&d)["counter noise.c"], Status::Skipped);
        let report = GateReport {
            deltas: d,
            ..Default::default()
        };
        assert!(!report.failed());
    }

    // -- fs-level tests -----------------------------------------------------

    struct TmpDirs {
        root: PathBuf,
    }

    impl TmpDirs {
        fn new(tag: &str) -> TmpDirs {
            let root = std::env::temp_dir().join(format!(
                "benchgate-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(root.join("results")).expect("mk results");
            std::fs::create_dir_all(root.join("baselines")).expect("mk baselines");
            TmpDirs { root }
        }

        fn results(&self) -> PathBuf {
            self.root.join("results")
        }

        fn baselines(&self) -> PathBuf {
            self.root.join("baselines")
        }

        fn write(&self, rel: &str, content: &str) {
            std::fs::write(self.root.join(rel), content).expect("write fixture");
        }
    }

    impl Drop for TmpDirs {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn gate_passes_on_matching_dirs_and_fails_on_doctored_baseline() {
        let t = TmpDirs::new("doctored");
        let good = snap(
            "\"admission.admit\": 100",
            "\"sessions.active\": 0",
            &hist(50, 100, 180, 200),
        );
        t.write("results/session_scale.json", &good);
        t.write("baselines/session_scale.json", &good);
        let cfg = GateConfig::default();
        let report = run_gate(&t.results(), &t.baselines(), &cfg);
        assert!(
            !report.failed(),
            "clean HEAD must pass: {}",
            render_text(&report)
        );

        // Doctor the baseline the way a perf regression would look: the
        // blessed p99 was 4x better than what the current run measures.
        let doctored = snap(
            "\"admission.admit\": 100",
            "\"sessions.active\": 0",
            &hist(50, 20, 30, 40),
        );
        t.write("baselines/session_scale.json", &doctored);
        let report = run_gate(&t.results(), &t.baselines(), &cfg);
        assert!(report.failed(), "doctored baseline must fail the gate");
        assert!(
            report
                .deltas
                .iter()
                .any(|d| d.status == Status::Regressed && d.kind == "p99"),
            "failure must name the regressed quantile: {}",
            render_text(&report)
        );
        let json = render_json(&report);
        let doc = Json::parse(&json).expect("report json parses");
        assert_eq!(
            doc.get("failed").map(|f| f == &Json::Bool(true)),
            Some(true)
        );
    }

    #[test]
    fn bless_rewrites_baselines_from_results() {
        let t = TmpDirs::new("bless");
        let old = snap("\"c\": 10", "", &hist(5, 10, 20, 30));
        let new = snap("\"c\": 10000", "", &hist(5, 10, 20, 30));
        t.write("baselines/demo.json", &old);
        t.write("results/demo.json", &new);
        t.write("results/brand_new.json", &old);
        let cfg = GateConfig::default();
        assert!(run_gate(&t.results(), &t.baselines(), &cfg).failed());
        let blessed = bless(&t.results(), &t.baselines()).expect("bless");
        assert_eq!(blessed, vec!["brand_new".to_string(), "demo".to_string()]);
        assert_eq!(
            std::fs::read_to_string(t.baselines().join("demo.json")).expect("read"),
            new,
            "bless copies the current result verbatim"
        );
        let report = run_gate(&t.results(), &t.baselines(), &cfg);
        assert!(
            !report.failed(),
            "gate is clean after bless: {}",
            render_text(&report)
        );
    }

    #[test]
    fn malformed_and_missing_files_are_hard_errors() {
        let t = TmpDirs::new("malformed");
        t.write("baselines/demo.json", &snap("\"c\": 1", "", ""));
        // Missing current result.
        let report = run_gate(&t.results(), &t.baselines(), &GateConfig::default());
        assert!(report.failed());
        assert!(
            report.errors[0].contains("no current result"),
            "{:?}",
            report.errors
        );
        // Malformed current result.
        t.write("results/demo.json", "{\"obskit\": 1, truncated");
        let report = run_gate(&t.results(), &t.baselines(), &GateConfig::default());
        assert!(report.failed());
        assert!(
            report.errors[0].contains("not valid JSON"),
            "{:?}",
            report.errors
        );
        // Wrong schema tag.
        t.write("results/demo.json", "{\"not_obskit\": 2}");
        let report = run_gate(&t.results(), &t.baselines(), &GateConfig::default());
        assert!(report.failed());
        assert!(
            report.errors[0].contains("not an obskit v1 snapshot"),
            "{:?}",
            report.errors
        );
        // Bless refuses to adopt garbage.
        assert!(bless(&t.results(), &t.baselines()).is_err());
    }

    // -- series tests -------------------------------------------------------

    fn series_cfg() -> SeriesCfg {
        SeriesCfg {
            min_intervals: 3,
            zero_final: vec!["sessions.active".into()],
            monotone: vec!["admission.pending.peak".into()],
            bounded: vec![("admission.pending.peak".into(), "pending_cap".into())],
        }
    }

    const GOOD_SERIES: &str = concat!(
        "{\"obskit_series\": 1, \"meta\": {\"source\": \"t\", \"pending_cap\": \"8\"}}\n",
        "{\"seq\": 1, \"label\": \"a\", \"counters\": {\"c\": 3}, \"gauges\": \
         {\"sessions.active\": 2, \"admission.pending.peak\": 4}, \"histograms\": {}}\n",
        "{\"seq\": 2, \"label\": \"b\", \"counters\": {\"c\": 0}, \"gauges\": \
         {\"sessions.active\": 1, \"admission.pending.peak\": 8}, \"histograms\": \
         {\"h\": {\"count\": 2, \"p50\": 5, \"p95\": 5, \"p99\": 5}}}\n",
        "{\"seq\": 3, \"label\": \"c\", \"counters\": {\"c\": 1}, \"gauges\": \
         {\"sessions.active\": 0, \"admission.pending.peak\": 8}, \"histograms\": {}}\n",
    );

    #[test]
    fn valid_series_passes() {
        let errs = check_series_text(GOOD_SERIES, &series_cfg(), "t");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn series_invariant_violations_are_caught() {
        let cases: &[(&str, &str)] = &[
            // Too few intervals.
            (
                "{\"obskit_series\": 1, \"meta\": {}}\n{\"seq\": 1, \"label\": \"a\", \
                 \"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n",
                "at least 3",
            ),
            // Negative counter delta.
            (
                &GOOD_SERIES.replace("\"counters\": {\"c\": 0}", "\"counters\": {\"c\": -2}"),
                "negative",
            ),
            // Broken sequence numbering.
            (
                &GOOD_SERIES.replace("\"seq\": 2", "\"seq\": 7"),
                "interval sequence",
            ),
            // Bounded gauge above the header cap.
            (
                &GOOD_SERIES.replace(
                    "\"admission.pending.peak\": 8}, \"histograms\": {}}",
                    "\"admission.pending.peak\": 9}, \"histograms\": {}}",
                ),
                "exceeds meta.pending_cap",
            ),
            // Monotone gauge decreasing.
            (
                &GOOD_SERIES.replacen(
                    "\"admission.pending.peak\": 8",
                    "\"admission.pending.peak\": 3",
                    1,
                ),
                "decreased",
            ),
            // Gauge not drained by the final interval.
            (
                &GOOD_SERIES.replace("{\"sessions.active\": 0,", "{\"sessions.active\": 5,"),
                "drain to zero",
            ),
            // Malformed interval line.
            (
                &GOOD_SERIES.replace("{\"seq\": 3", "{\"seq\": oops 3"),
                "not valid JSON",
            ),
            // Missing header tag.
            ("{\"seq\": 1}\n", "obskit_series"),
        ];
        for (text, want) in cases {
            let errs = check_series_text(text, &series_cfg(), "t");
            assert!(
                errs.iter().any(|e| e.contains(want)),
                "expected a violation containing {want:?}, got {errs:?}"
            );
        }
    }

    #[test]
    fn bounded_rule_skips_series_without_the_cap() {
        // A chaos-soak series has no pending_cap in its header; the rule
        // must not fire.
        let text = GOOD_SERIES.replace(", \"pending_cap\": \"8\"", "");
        let errs = check_series_text(
            &text.replace(
                "\"admission.pending.peak\": 4",
                "\"admission.pending.peak\": 400",
            ),
            &SeriesCfg {
                monotone: vec![],
                ..series_cfg()
            },
            "t",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }
}
