//! `cargo xtask` — workspace dev-tool entry point.
//!
//! * `cargo xtask lint [--json]` — run the line-level lint pass
//!   (see [`xtask::lint_workspace`]) over `crates/*/src`.
//! * `cargo xtask analyze [--json] [--witness <path>]` — run the
//!   phoenix-analyze static passes: inferred lock-order graph with
//!   deadlock-cycle detection, instrumentation-coverage cross-checks,
//!   and (with `--witness`) validation of a runtime lockcheck log
//!   against the static graph.
//! * `cargo xtask bench-gate [--json] [--bless] [--results <dir>]
//!   [--baselines <dir>] [--series <path>]... [--series-only]` — compare
//!   the benchmark JSON twins against the blessed baselines with the
//!   tolerance bands from `<baselines>/gate.toml`, and/or validate
//!   streaming JSON-lines series files (see [`xtask::benchgate`]).
//! * `cargo xtask ci` — the full pre-merge gate: `fmt --check`,
//!   `clippy`, `lint`, `analyze`, `test`, fault enumeration, chaos soak,
//!   obskit snapshot and lockcheck witness validation, perf baselines
//!   via `bench-gate`, failing fast on the first broken step.

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let witness = args
        .iter()
        .position(|a| a == "--witness")
        .and_then(|i| args.get(i + 1))
        .cloned();
    match args.first().map(String::as_str) {
        Some("lint") => lint(json),
        Some("analyze") => analyze(json, witness.as_deref()),
        Some("bench-gate") => bench_gate(&args[1..]),
        Some("ci") => ci(),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!(
        "cargo xtask <command>\n\n\
         commands:\n\
         \x20 lint [--json]\n\
         \x20        line-level lint: panic-path hygiene, lock discipline,\n\
         \x20        error hygiene (waive a line with `// lint:allow(rule): why`)\n\
         \x20 analyze [--json] [--witness <path>]\n\
         \x20        workspace static analysis: inferred lock-order graph with\n\
         \x20        deadlock-cycle detection, instrumentation-coverage passes\n\
         \x20        (waive with `// analyze:allow(<pass>): why`); --witness checks\n\
         \x20        a runtime lockcheck log against the static graph\n\
         \x20 bench-gate [--json] [--bless] [--results <dir>] [--baselines <dir>]\n\
         \x20            [--series <path>]... [--series-only]\n\
         \x20        compare bench_results/*.json against the blessed baselines\n\
         \x20        under bench_baselines/ using <baselines>/gate.toml tolerance\n\
         \x20        bands; --bless adopts the current results as the new\n\
         \x20        baselines; --series validates streaming JSON-lines series\n\
         \x20        files (--series-only skips the baseline compare)\n\
         \x20 ci     full pre-merge gate: fmt --check, clippy, lint, analyze,\n\
         \x20        test, seeded fault enumeration, bounded chaos soak,\n\
         \x20        obskit snapshot + lockcheck witness validation,\n\
         \x20        bench-gate perf baselines (checked-in twins + fast subset)"
    );
}

/// The workspace root: this binary is compiled in-tree, so the manifest
/// dir of the `xtask` crate is `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

fn lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: cannot scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", xtask::analyze::lint_json(&violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if violations.is_empty() {
        println!("xtask lint: clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!(
        "\nxtask lint: {} violation(s). Fix them or waive a line with\n\
         `// lint:allow({}): <why this line is safe>`.",
        violations.len(),
        violations.first().map_or("rule", |v| v.rule.name())
    );
    ExitCode::FAILURE
}

fn analyze(json: bool, witness: Option<&str>) -> ExitCode {
    let root = workspace_root();
    let ws = match xtask::analyze::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask analyze: cannot load workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut analysis = xtask::analyze::analyze(&ws);
    if let Some(wpath) = witness {
        match std::fs::read_to_string(wpath) {
            Ok(text) => {
                let wv = xtask::analyze::check_witness(&analysis.graph, &text, wpath);
                analysis.violations.extend(wv);
            }
            Err(e) => {
                eprintln!("xtask analyze: cannot read witness {wpath}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if json {
        print!("{}", xtask::analyze::analysis_json(&analysis));
        return if analysis.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let st = &analysis.stats;
    println!(
        "xtask analyze: {} files, {} fns, {} lock nodes, {} edges \
         ({} waived), {} cycles, {} crashpoints, {} recovery phases checked, \
         {} bench bins",
        st.files,
        st.functions,
        st.nodes,
        st.edges,
        st.edges_waived,
        st.cycles,
        st.crashpoints,
        st.phases_checked,
        st.bench_bins
    );
    if analysis.violations.is_empty() {
        println!("xtask analyze: clean");
        return ExitCode::SUCCESS;
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    println!(
        "\nxtask analyze: {} violation(s). Fix them or waive with\n\
         `// analyze:allow(<pass>): <why>` (passes: {}).",
        analysis.violations.len(),
        xtask::analyze::ANALYZE_PASSES.join(", ")
    );
    ExitCode::FAILURE
}

/// `cargo xtask bench-gate`: the perf-regression gate. Compares every
/// baseline under `bench_baselines/` against `bench_results/<name>.json`
/// with the tolerance bands from `bench_baselines/gate.toml`, optionally
/// validates streaming series files, and with `--bless` adopts the
/// current results as the new baselines first.
fn bench_gate(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut json = false;
    let mut do_bless = false;
    let mut series_only = false;
    let mut series: Vec<PathBuf> = Vec::new();
    let mut results = root.join("bench_results");
    let mut baselines = root.join("bench_baselines");
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<PathBuf> {
            *i += 1;
            args.get(*i).map(PathBuf::from)
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--bless" => do_bless = true,
            "--series-only" => series_only = true,
            "--series" => match take_value(&mut i) {
                Some(p) => series.push(p),
                None => {
                    eprintln!("xtask bench-gate: --series needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--results" => match take_value(&mut i) {
                Some(p) => results = p,
                None => {
                    eprintln!("xtask bench-gate: --results needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--baselines" => match take_value(&mut i) {
                Some(p) => baselines = p,
                None => {
                    eprintln!("xtask bench-gate: --baselines needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench-gate: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let cfg = match xtask::benchgate::GateConfig::load(&baselines) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("xtask bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut report = xtask::benchgate::GateReport::default();
    if do_bless {
        match xtask::benchgate::bless(&results, &baselines) {
            Ok(names) => report.notes.push(format!(
                "blessed {} baseline(s): {}",
                names.len(),
                names.join(", ")
            )),
            Err(e) => {
                eprintln!("xtask bench-gate: bless failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !series_only {
        let dir_report = xtask::benchgate::run_gate(&results, &baselines, &cfg);
        report.deltas.extend(dir_report.deltas);
        report.errors.extend(dir_report.errors);
        report.notes.extend(dir_report.notes);
    }
    for path in &series {
        let errs = xtask::benchgate::check_series(path, &cfg.series);
        report.series.push((path.display().to_string(), errs));
    }
    if json {
        print!("{}", xtask::benchgate::render_json(&report));
    } else {
        print!("{}", xtask::benchgate::render_text(&report));
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One step of the CI gate, run from the workspace root.
fn step(name: &str, cmd: &mut Command) -> bool {
    println!("== xtask ci: {name} ==");
    match cmd.status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask ci: step `{name}` failed with {s}");
            false
        }
        Err(e) => {
            eprintln!("xtask ci: cannot run step `{name}`: {e}");
            false
        }
    }
}

/// Parse the exported obskit snapshot and check the schema essentials:
/// the version tag, a `histograms` object, and a non-empty timeline from
/// the traced seed.
fn validate_snapshot(path: &Path) -> bool {
    println!("== xtask ci: validate obskit snapshot ==");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask ci: snapshot {} unreadable: {e}", path.display());
            return false;
        }
    };
    let doc = match obskit::json::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask ci: snapshot is not valid JSON: {e}");
            return false;
        }
    };
    let version_ok = doc.get("obskit").and_then(|v| v.as_f64()) == Some(1.0);
    let hists_ok = doc.get("histograms").and_then(|h| h.as_obj()).is_some();
    let events = doc.get("events").and_then(|e| e.as_arr()).map(<[_]>::len);
    if !version_ok || !hists_ok || events.is_none_or(|n| n == 0) {
        eprintln!(
            "xtask ci: snapshot schema check failed \
             (version ok: {version_ok}, histograms ok: {hists_ok}, events: {events:?})"
        );
        return false;
    }
    println!(
        "snapshot ok: {} bytes, {} timeline events",
        text.len(),
        events.unwrap_or(0)
    );
    true
}

/// Parse the group-commit snapshot and check that the 4-session commit
/// mix actually coalesced: the `wal.flush.batch_size` histogram must be
/// present with a median batch of at least 2 commits per fsync.
fn validate_group_commit_snapshot(path: &Path) -> bool {
    println!("== xtask ci: validate group-commit batching ==");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask ci: snapshot {} unreadable: {e}", path.display());
            return false;
        }
    };
    let doc = match obskit::json::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask ci: snapshot is not valid JSON: {e}");
            return false;
        }
    };
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("wal.flush.batch_size"));
    let Some(hist) = hist else {
        eprintln!("xtask ci: snapshot has no wal.flush.batch_size histogram");
        return false;
    };
    let count = hist.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let p50 = hist.get("p50").and_then(|v| v.as_f64()).unwrap_or(0.0);
    if count < 1.0 || p50 < 2.0 {
        eprintln!(
            "xtask ci: group commit did not coalesce under the 4-session mix \
             (batch_size count: {count}, p50: {p50}, need p50 >= 2)"
        );
        return false;
    }
    println!("group commit ok: {count} covering fsyncs, batch p50 = {p50}");
    true
}

/// Parse the reconnect-storm snapshot and check that the admission
/// story actually happened: the herd shed, the pending gate's high-water
/// mark respected the configured cap, and every slot drained (active
/// sessions and pending handshakes both back to zero).
fn validate_storm_snapshot(path: &Path) -> bool {
    println!("== xtask ci: validate reconnect-storm admission ==");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask ci: snapshot {} unreadable: {e}", path.display());
            return false;
        }
    };
    let doc = match obskit::json::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask ci: snapshot is not valid JSON: {e}");
            return false;
        }
    };
    let cap = doc
        .get("meta")
        .and_then(|m| m.get("pending_cap"))
        .and_then(|v| v.as_str())
        .and_then(|s| s.parse::<f64>().ok());
    let Some(cap) = cap else {
        eprintln!("xtask ci: storm snapshot has no meta.pending_cap");
        return false;
    };
    // Named to stay out of the analyzer's obskit-emission detector:
    // these *read* exported values, they don't emit instruments.
    let read_counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    let read_gauge = |name: &str| {
        doc.get("gauges")
            .and_then(|g| g.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or(-1.0)
    };
    let admitted = read_counter("admission.admit");
    let shed = read_counter("admission.shed");
    let peak = read_gauge("admission.pending.peak");
    let active = read_gauge("sessions.active");
    let pending = read_gauge("admission.pending");
    let ok = admitted > 0.0
        && shed > 0.0
        && peak >= 1.0
        && peak <= cap
        && active == 0.0
        && pending == 0.0;
    if !ok {
        eprintln!(
            "xtask ci: storm admission check failed (admitted: {admitted}, shed: {shed}, \
             pending peak: {peak} vs cap {cap}, residual active: {active}, pending: {pending})"
        );
        return false;
    }
    println!(
        "storm ok: {admitted} admits, {shed} sheds, pending peak {peak} <= cap {cap}, \
         all slots drained"
    );
    true
}

/// Validate the runtime lockcheck witness against the statically
/// inferred lock-order graph: every acquisition order observed at
/// runtime must be consistent with (not contradict) the static edges.
fn validate_witness(path: &Path) -> bool {
    println!("== xtask ci: validate lockcheck witness ==");
    let root = workspace_root();
    let ws = match xtask::analyze::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask ci: cannot load workspace for witness check: {e}");
            return false;
        }
    };
    let analysis = xtask::analyze::analyze(&ws);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask ci: witness {} unreadable: {e}", path.display());
            return false;
        }
    };
    let violations =
        xtask::analyze::check_witness(&analysis.graph, &text, &path.display().to_string());
    if violations.is_empty() {
        println!("witness ok: runtime order consistent with the static graph");
        return true;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    false
}

fn ci() -> ExitCode {
    let root = workspace_root();
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".into());

    let fmt_ok = step(
        "fmt --check",
        Command::new(&cargo)
            .args(["fmt", "--all", "--", "--check"])
            .current_dir(&root),
    );
    // The unwrap/expect baseline is warn-level on purpose (the hard
    // guarantee for recovery-critical modules comes from `lint` below),
    // so those two lints stay advisory while everything else is denied.
    let clippy_ok = fmt_ok
        && step(
            "clippy",
            Command::new(&cargo)
                .args([
                    "clippy",
                    "--workspace",
                    "--all-targets",
                    "--",
                    "-D",
                    "warnings",
                    "-A",
                    "clippy::unwrap_used",
                    "-A",
                    "clippy::expect_used",
                ])
                .current_dir(&root),
        );
    let lint_ok = clippy_ok && {
        println!("== xtask ci: lint ==");
        lint(false) == ExitCode::SUCCESS
    };
    let analyze_ok = lint_ok && {
        println!("== xtask ci: analyze ==");
        analyze(false, None) == ExitCode::SUCCESS
    };
    let test_ok = analyze_ok
        && step(
            "test",
            Command::new(&cargo)
                .args(["test", "--workspace", "-q"])
                .current_dir(&root),
        );
    // The crashpoint enumeration suite already ran once under `test`;
    // this second pass pins the seeded-schedule proptest to a fixed
    // fault seed so the gate exercises one reproducible schedule set
    // regardless of what the default seed drifts to.
    let faults_ok = test_ok
        && step(
            "fault enumeration (FAULTKIT_SEED=2026)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "fault_injection",
                    "-q",
                ])
                .env("FAULTKIT_SEED", "2026")
                .current_dir(&root),
        );

    // Bounded chaos soak: a pinned block of seeds so the gate replays
    // the same randomized fault schedules on every run. The full 64-seed
    // sweep stays a local/manual job (CHAOS_SOAK_SEEDS=64). The soak
    // also streams a per-seed JSON-lines series, validated by the
    // bench-gate series step below.
    let chaos_series = root.join("target").join("xtask-chaos-soak.series.jsonl");
    let soak_ok = faults_ok
        && step(
            "chaos soak (8 pinned seeds)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "chaos_soak",
                    "-q",
                ])
                .env("CHAOS_SOAK_SEEDS", "8")
                .env("CHAOS_SOAK_BASE", "2026")
                .env("OBSKIT_SERIES", &chaos_series)
                .current_dir(&root),
        );

    // Storage-fault soak: pinned seeds driving torn writes, bit flips,
    // I/O errors and fsync failures on the simulated disk and WAL
    // devices, mixed with crashes — asserting repair-or-surface for
    // every injected corruption. Failing seeds print a
    // FAULTKIT_REPLAY='disk_chaos:seed#<n>' line.
    let disk_series = root.join("target").join("xtask-disk-chaos.series.jsonl");
    let disk_ok = soak_ok
        && step(
            "disk-fault soak (4 pinned seeds)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "disk_chaos",
                    "-q",
                ])
                .env("DISK_SOAK_SEEDS", "4")
                .env("DISK_SOAK_BASE", "2026")
                .env("OBSKIT_SERIES", &disk_series)
                .current_dir(&root),
        );

    // Observability smoke: one trace-enabled chaos seed exports an obskit
    // snapshot, which must come back as well-formed JSON with the schema
    // tag — guarding the exporter the bench twins and timeline dumps use.
    // The same traced run doubles as the lockcheck witness: with
    // OBSKIT_LOCKCHECK set, the chaos harness enables the debug-build
    // lock-order recorder and dumps every (held -> acquired) pair it saw,
    // which is then validated against the statically inferred graph.
    let snapshot = root.join("target").join("xtask-obskit-snapshot.json");
    let witness = root.join("target").join("xtask-lockcheck-witness.json");
    let obs_ok = disk_ok
        && step(
            "obskit snapshot + lockcheck witness (1 traced seed)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "chaos_soak",
                    "-q",
                ])
                .env("CHAOS_SOAK_SEEDS", "1")
                .env("CHAOS_SOAK_BASE", "2026")
                .env("OBSKIT_SNAPSHOT", &snapshot)
                .env("OBSKIT_LOCKCHECK", &witness)
                .current_dir(&root),
        )
        && validate_snapshot(&snapshot)
        && validate_witness(&witness);

    // Group-commit batching gate: run the 4-session commit mix alone
    // (its own process, so the global registry holds only this run) and
    // check the exported wal.flush.batch_size histogram shows real
    // coalescing — a median fsync covering at least 2 commits, i.e.
    // strictly fewer than one fsync per commit.
    let gc_snapshot = root.join("target").join("xtask-group-commit-snapshot.json");
    let gc_ok = obs_ok
        && step(
            "group commit (4-session mix)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "group_commit",
                    "four_session_commit_mix_batches_fsyncs",
                    "-q",
                ])
                .env("OBSKIT_SNAPSHOT", &gc_snapshot)
                .current_dir(&root),
        )
        && validate_group_commit_snapshot(&gc_snapshot);

    // Reconnect-storm gate: one pinned storm seed (replay mode, its own
    // process) must shed a real herd through the bounded pending gate,
    // recover every session, and drain every admission slot — validated
    // from the exported snapshot's admission counters and gauges.
    let storm_snapshot = root.join("target").join("xtask-storm-snapshot.json");
    let storm_ok = gc_ok
        && step(
            "reconnect storm (pinned seed 2026)",
            Command::new(&cargo)
                .args([
                    "test",
                    "-p",
                    "integration-tests",
                    "--test",
                    "reconnect_storm",
                    "reconnect_storm_sheds_bounded_and_recovers_every_session",
                    "-q",
                ])
                .env("FAULTKIT_REPLAY", "reconnect_storm:seed#2026")
                .env("OBSKIT_SNAPSHOT", &storm_snapshot)
                .current_dir(&root),
        )
        && validate_storm_snapshot(&storm_snapshot);

    // Perf gate 1/3 — checked-in twins: every bench_results/*.json must
    // match its blessed bench_baselines/ copy within the gate.toml
    // tolerance bands. In a clean tree these are identical files; drift
    // means someone regenerated results without running
    // `cargo xtask bench-gate --bless`.
    let twins_ok = storm_ok && {
        println!("== xtask ci: bench-gate (checked-in twins) ==");
        bench_gate(&[]) == ExitCode::SUCCESS
    };

    // Perf gate 2/3 — fast live subset: re-measure one recovery sweep
    // (fig3 at the default SF 0.02) and a small session-scale sweep with
    // pinned seeds, adopt the group-commit snapshot from the step above,
    // and compare against bench_baselines/ci/ (its own manifest, with
    // bands wide enough for cross-machine wall-clock noise but tight on
    // the deterministic counters).
    let ci_results = root.join("target").join("ci-bench-results");
    let ci_baselines = root.join("bench_baselines").join("ci");
    let scale_series = ci_results.join("session_scale.series.jsonl");
    let subset_ok = twins_ok
        && {
            let _ = std::fs::remove_dir_all(&ci_results);
            step(
                "bench fig3_recovery_client (fast subset, seed 42)",
                Command::new(&cargo)
                    .args([
                        "run",
                        "--release",
                        "-q",
                        "-p",
                        "bench",
                        "--bin",
                        "fig3_recovery_client",
                    ])
                    .env("PHX_SF", "0.02")
                    .env("PHX_SEED", "42")
                    .env("PHX_RESULTS_DIR", &ci_results)
                    .current_dir(&root),
            )
        }
        && step(
            "bench session_scale (fast subset, seed 2026)",
            Command::new(&cargo)
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "bench",
                    "--bin",
                    "session_scale",
                ])
                .env("PHX_SCALE_SWEEP", "16,32,64")
                .env("PHX_SCALE_PENDING", "8")
                .env("PHX_SCALE_SEED", "2026")
                .env("PHX_RESULTS_DIR", &ci_results)
                .current_dir(&root),
        )
        && {
            let to = ci_results.join("ci_group_commit.json");
            match std::fs::copy(&gc_snapshot, &to) {
                Ok(_) => true,
                Err(e) => {
                    eprintln!(
                        "xtask ci: cannot adopt group-commit snapshot as {}: {e}",
                        to.display()
                    );
                    false
                }
            }
        }
        && {
            println!("== xtask ci: bench-gate (fast subset) ==");
            bench_gate(&[
                "--results".to_string(),
                ci_results.display().to_string(),
                "--baselines".to_string(),
                ci_baselines.display().to_string(),
            ]) == ExitCode::SUCCESS
        };

    // Perf gate 3/3 — streaming series invariants: the soak and scale
    // series written above must be well-formed interval sequences with
    // non-negative deltas, a monotone pending high-water mark bounded by
    // the admission cap, and every session drained by the final mark.
    let series_ok = subset_ok && {
        println!("== xtask ci: bench-gate (series invariants) ==");
        bench_gate(&[
            "--series-only".to_string(),
            "--series".to_string(),
            chaos_series.display().to_string(),
            "--series".to_string(),
            disk_series.display().to_string(),
            "--series".to_string(),
            scale_series.display().to_string(),
        ]) == ExitCode::SUCCESS
    };

    if series_ok {
        println!("== xtask ci: all green ==");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
