//! Workspace lint engine behind `cargo xtask lint`.
//!
//! A small rustc-tidy-style static pass over the workspace's own sources
//! (no external dependencies, no proc macros — plain text analysis of
//! comment/string-stripped code). It enforces three rule families that
//! matter specifically to a recovery system, where a panic or a silently
//! dropped error during restart turns "persistent session" into "lost
//! session":
//!
//! * **Panic-path hygiene** (`panic`, `index`, `discard`): non-test code
//!   in recovery-critical modules must not call
//!   `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`,
//!   must not use panicking slice indexing, and must not discard a
//!   `Result` with `let _ =` — errors there have to surface through the
//!   crate's `Result` types so recovery can act on them.
//! * **Lock discipline** (`lock`): no blocking call (condvar waits,
//!   channel receives, file or network I/O) while a
//!   `lock()`/`read()`/`write()` guard bound in the same scope is live,
//!   except condvar waits that atomically release the named guard.
//!   Acquisition *order* is no longer a hardcoded rank list here — the
//!   [`analyze`] module infers the lock-order graph from the code and
//!   reports any cycle (`cargo xtask analyze`).
//! * **Error hygiene** (`error`): library code must not type-erase
//!   errors as `Box<dyn Error>` or launder them through `.ok().unwrap()`.
//!
//! Any rule can be waived for one line with a justified annotation:
//!
//! ```text
//! // lint:allow(panic): checksum verified two lines above
//! ```
//!
//! The justification text is mandatory; an empty reason is itself a
//! violation. `#[cfg(test)]` regions and `tests/`, `benches/`,
//! `examples/` and `compat/` trees are exempt (only `crates/*/src` is
//! scanned).

pub mod analyze;
pub mod benchgate;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rule family a violation belongs to. The lowercase name is what
/// `lint:allow(...)` annotations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in recovery-critical non-test code.
    Panic,
    /// Panicking slice/array indexing in recovery-critical non-test code.
    Index,
    /// `let _ =` discard in recovery-critical non-test code.
    Discard,
    /// Blocking call while a lock guard is live.
    Lock,
    /// `Box<dyn Error>` or `.ok().unwrap()` in library code.
    Error,
    /// Raw `thread::sleep` in reconnect/recovery code, where every wait
    /// must flow through `ReconnectPolicy`'s budgeted backoff.
    Sleep,
    /// Duplicate `crashpoint!` name: replay specs (`name#nth`) are only
    /// meaningful when each name identifies one program point.
    Crashpoint,
    /// Raw `println!`/`eprintln!` in library code: diagnostics must flow
    /// through obskit (trace events / metrics) or be returned to the
    /// caller, not write to stdio the harness can't capture.
    Print,
    /// Malformed `lint:allow` annotation (missing justification).
    BadAllow,
    /// Cycle in the inferred lock-order graph (`cargo xtask analyze`).
    Deadlock,
    /// Durability site (wal/persist/recovery obskit emission) without a
    /// covering `crashpoint!`.
    Durability,
    /// Crashpoint not referenced by any test scenario.
    Scenario,
    /// Recovery-phase table out of sync with its `NAMES`/emission.
    Phase,
    /// Gauge with constant positive `.add()` sites but no negative site:
    /// the level can only ratchet up, so it is a leak by construction.
    GaugeBalance,
    /// Runtime lockcheck witness contradicting the static graph.
    Witness,
    /// Bench/baseline drift: a bench binary that never emits its JSON
    /// twin, a blessed baseline with no corresponding binary, or a
    /// `[gate] extra` manifest entry with no baseline file.
    Bench,
}

impl Rule {
    /// The name used in `lint:allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Discard => "discard",
            Rule::Lock => "lock",
            Rule::Error => "error",
            Rule::Sleep => "sleep",
            Rule::Crashpoint => "crashpoint",
            Rule::Print => "print",
            Rule::BadAllow => "bad_allow",
            Rule::Deadlock => "deadlock",
            Rule::Durability => "durability",
            Rule::Scenario => "scenario",
            Rule::Phase => "phase",
            Rule::GaugeBalance => "gauge_balance",
            Rule::Witness => "witness",
            Rule::Bench => "bench",
        }
    }
}

/// One finding: file, 1-based line, rule and human-readable message.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file. Decided by [`classify`] from the
/// workspace-relative path; tests pass hand-built values to exercise the
/// engine on fixtures.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Panic-path hygiene (`panic`, `index`, `discard`): the
    /// recovery-critical module list.
    pub panic_rules: bool,
    /// Panic-call hygiene only (`panic` tokens, without the index/discard
    /// rules): modules cleared of `unwrap`/`expect` that must stay clear.
    pub panic_call_rules: bool,
    /// Guard-across-blocking (`lock`): concurrency-heavy modules.
    pub lock_rules: bool,
    /// Error hygiene (`error`): all scanned library code.
    pub error_rules: bool,
    /// Unbudgeted-wait hygiene (`sleep`): recovery code where every wait
    /// must go through the reconnect policy's `Backoff`.
    pub sleep_rules: bool,
    /// Stdio hygiene (`print`): library crates must not write raw
    /// `println!`/`eprintln!`; bench and xtask binaries are sanctioned.
    pub print_rules: bool,
}

/// Modules where a panic or swallowed error breaks crash recovery — the
/// session state machine, the client-side persistence layer, the WAL,
/// and the server request loop that replays against them.
const PANIC_CRITICAL: &[&str] = &[
    "crates/core/src/session.rs",
    "crates/core/src/persist.rs",
    "crates/sqlengine/src/wal/",
    "crates/wire/src/server.rs",
];

/// Modules whose non-test code has been cleared of `unwrap`/`expect` and
/// must not regress. The engine, wire, and faultkit crates are all
/// promoted now that their last warn-level sites are gone. These only get
/// the panic-call token rule: they index rows and slices pervasively, so
/// the `index` and `discard` rules stay scoped to [`PANIC_CRITICAL`].
const PANIC_CALLS: &[&str] = &[
    "crates/sqlengine/src/",
    "crates/wire/src/",
    "crates/faultkit/src/",
];

/// Reconnect/recovery code: a raw `thread::sleep` here is a wait that
/// ignores the `ReconnectPolicy` budget (backoff curve, overall
/// deadline), so it can stretch recovery past the promised deadline.
/// The one sanctioned sleep site is `Backoff::wait`, which carries a
/// `lint:allow(sleep)` waiver.
const SLEEP_SCOPE: &[&str] = &["crates/core/src/"];

/// Crates whose binaries legitimately write to stdio: the bench harnesses
/// print their tables and xtask is the dev tool itself. Everything else
/// under `crates/*/src` is library code where raw prints bypass obskit.
const PRINT_SANCTIONED: &[&str] = &["crates/bench/", "crates/xtask/"];

/// Modules that take the ranked locks or block while holding guards.
const LOCK_SCOPE: &[&str] = &[
    "crates/sqlengine/src/txn/",
    "crates/sqlengine/src/storage/",
    "crates/wire/src/server.rs",
];

/// Decide which rules apply to a workspace-relative path (forward
/// slashes). Everything scanned gets the error-hygiene rules.
pub fn classify(rel_path: &str) -> FileClass {
    let hit = |list: &[&str]| list.iter().any(|p| rel_path.starts_with(p));
    FileClass {
        panic_rules: hit(PANIC_CRITICAL),
        panic_call_rules: hit(PANIC_CRITICAL) || hit(PANIC_CALLS),
        lock_rules: hit(LOCK_SCOPE),
        error_rules: true,
        sleep_rules: hit(SLEEP_SCOPE),
        print_rules: !hit(PRINT_SANCTIONED),
    }
}

/// Replace comment bodies and string/char-literal contents with spaces,
/// preserving byte offsets and newlines, so the rule scanners never
/// match inside text. Handles line comments, nested block comments,
/// raw strings (`r"…"`, `r#"…"#`), byte strings, and the char-literal
/// vs lifetime ambiguity (`'a'` vs `'a`).
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b'
                if {
                    // Raw / byte / raw-byte string starts: r" r#" b" br" rb"…
                    let mut k = i;
                    if b[k] == b'b' && k + 1 < b.len() && b[k + 1] == b'r' {
                        k += 1;
                    }
                    let is_raw = b[k] == b'r';
                    let mut h = k + 1;
                    while is_raw && h < b.len() && b[h] == b'#' {
                        h += 1;
                    }
                    let starts_string = h < b.len() && b[h] == b'"';
                    // Only treat as a literal when `r`/`b` is not part of
                    // a longer identifier (e.g. `var"` can't occur).
                    let prev_ident =
                        i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                    (starts_string || (b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'"'))
                        && !prev_ident
                } =>
            {
                // Re-derive the shape, then blank to the matching close.
                let mut k = i;
                if b[k] == b'b' {
                    k += 1;
                }
                let raw = k < b.len() && b[k] == b'r';
                if raw {
                    k += 1;
                }
                let mut hashes = 0;
                while raw && k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                debug_assert!(k < b.len() && b[k] == b'"');
                let mut j = k + 1;
                while j < b.len() {
                    if raw {
                        if b[j] == b'"' && b[j + 1..].iter().take(hashes).all(|&c| c == b'#') {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    } else if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'"' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j.min(b.len()));
                i = j.min(b.len());
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'"' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j.min(b.len()));
                i = j.min(b.len());
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with `'`
                // within a couple of characters (or after an escape).
                let rest = &b[i + 1..];
                let lit_len = if rest.first() == Some(&b'\\') {
                    // Escaped char: find the closing quote.
                    rest.iter().position(|&c| c == b'\'').map(|p| p + 2)
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    Some(3) // 'x'
                } else if rest.first().is_some_and(|c| !c.is_ascii()) {
                    // Multi-byte char literal like '→'.
                    let s = &src[i + 1..];
                    s.char_indices()
                        .nth(1)
                        .filter(|&(idx, c)| c == '\'' && idx <= 4)
                        .map(|(idx, _)| idx + 2)
                } else {
                    None // lifetime
                };
                match lit_len {
                    Some(n) if i + n <= b.len() => {
                        blank(&mut out, i, i + n);
                        i += n;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    // The byte-level blanking never splits UTF-8 sequences we keep, but
    // be defensive: lossy conversion cannot fail the linter.
    String::from_utf8_lossy(&out).into_owned()
}

/// A `lint:allow(rule): reason` annotation, attached to the line of code
/// it waives.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rule: String,
}

/// Parse `lint:allow(...)` annotations from the ORIGINAL source (they
/// live in comments, which the stripper removes). An annotation on a
/// comment-only line applies to the next line; a trailing annotation
/// applies to its own line. Returns the allows plus violations for
/// annotations missing a justification.
fn collect_allows(src: &str) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let Some(pos) = raw.find("lint:allow(") else {
            continue;
        };
        let after = &raw[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            bad.push((idx + 1, "unclosed lint:allow(...)".into()));
            continue;
        };
        let rule = after[..close].trim().to_string();
        let reason = after[close + 1..]
            .trim_start_matches([':', ' ', '\t'])
            .trim();
        if reason.is_empty() {
            bad.push((
                idx + 1,
                format!("lint:allow({rule}) needs a justification after the closing paren"),
            ));
            continue;
        }
        // Comment-only line → waives the next line; otherwise its own.
        let before = &raw[..raw.find("//").unwrap_or(pos)];
        let line = if before.trim().is_empty() {
            idx + 2
        } else {
            idx + 1
        };
        allows.push(Allow { line, rule });
    }
    (allows, bad)
}

/// 1-based line ranges (inclusive) covered by `#[cfg(test)]` items,
/// computed on stripped source so braces in strings don't confuse the
/// matcher.
fn cfg_test_regions(stripped: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = stripped[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let after = attr_at + "#[cfg(test)]".len();
        let Some(open_rel) = stripped[after..].find('{') else {
            break;
        };
        let open = after + open_rel;
        let mut depth = 0usize;
        let mut end = stripped.len();
        for (off, ch) in stripped[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        let line_of = |byte: usize| stripped[..byte].matches('\n').count() + 1;
        regions.push((line_of(attr_at), line_of(end)));
        search_from = end;
    }
    regions
}

/// Calls that abort the process when they fire.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Calls that park the thread or hit the disk/network — forbidden while
/// a lock guard bound in the same scope is live.
const BLOCKING_TOKENS: &[&str] = &[
    ".wait(",
    ".wait_for(",
    ".recv(",
    ".recv_timeout(",
    ".accept(",
    "thread::sleep",
    "TcpStream",
    "File::open",
    "File::create",
    "fs::read",
    "fs::write",
    "OpenOptions",
];

/// A guard binding being tracked for liveness.
struct LiveGuard {
    name: String,
    depth: usize,
    line: usize,
}

/// True when `needle` occurs in `hay` delimited by non-identifier chars.
fn has_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let pre_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post = at + needle.len();
        let post_ok = !hay[post..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Extract the binding name from a line that binds a lock guard:
/// `let [mut] name = …acquire…`, `if let PAT = …acquire…`,
/// `while let PAT = …acquire…` (including `} else if let`), and
/// method-chain acquisitions on the right-hand side
/// (`let g = pool.frames.first().data.write();`). Returns the first
/// plausible binding identifier from the pattern, plus `true` when the
/// binding is scoped to the following body block (`if let`/`while let`)
/// rather than the enclosing block.
fn guard_binding(line: &str) -> Option<(String, bool)> {
    // Locate a `let` keyword whose prefix is only control-flow glue —
    // whitespace, `}`, `if`, `else`, `while` — so `completed = x` or
    // `violet =` never match.
    let mut pos = None;
    let mut from = 0;
    while let Some(rel) = line[from..].find("let") {
        let at = from + rel;
        let pre_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let post_ok = line[at + 3..]
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace());
        if pre_ok && post_ok {
            pos = Some(at);
            break;
        }
        from = at + 3;
    }
    let pos = pos?;
    let glue: Vec<&str> = line[..pos].split_whitespace().collect();
    if !glue
        .iter()
        .all(|w| matches!(*w, "}" | "{" | "if" | "else" | "while"))
    {
        return None;
    }
    let body_scoped = glue.iter().any(|w| matches!(*w, "if" | "while"));
    let rest = &line[pos + 3..];
    // Split pattern from initializer at the first plain `=` (not `==`,
    // `=>`, `<=`, `>=`, `!=`).
    let bytes = rest.as_bytes();
    let mut eq = None;
    for (k, &c) in bytes.iter().enumerate() {
        if c != b'=' {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| bytes[p]);
        let next = bytes.get(k + 1);
        if matches!(prev, Some(b'=') | Some(b'<') | Some(b'>') | Some(b'!'))
            || matches!(next, Some(b'=') | Some(b'>'))
        {
            continue;
        }
        eq = Some(k);
        break;
    }
    let eq = eq?;
    let (pat, rhs) = (&rest[..eq], &rest[eq + 1..]);
    let acquires = [".lock()", ".read()", ".write()"]
        .iter()
        .any(|t| rhs.contains(t));
    if !acquires {
        return None;
    }
    // First lowercase-leading identifier in the pattern that isn't a
    // keyword: handles `mut g`, `Some(g)`, `Ok((a, b))`, `ref g`.
    pat.split(|c: char| !c.is_alphanumeric() && c != '_')
        .find(|w| {
            !w.is_empty()
                && w.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && !matches!(*w, "mut" | "ref" | "box")
        })
        .map(|w| (w.to_string(), body_scoped))
}

/// Panicking index heuristic: `[` directly following an expression tail
/// (identifier, `)`, `]` or `?`) is an index, not a slice pattern,
/// attribute or array literal. `catch!` macros (`vec![…]`) are excluded
/// by the preceding `!`.
fn has_index_expr(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &c) in bytes.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        // The immediately preceding character decides: rustfmt puts no
        // space before an index `[`, while patterns/array types have one.
        let p = bytes[i - 1];
        if p == b'!' || p == b'#' {
            continue;
        }
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' || p == b'?' {
            return true;
        }
    }
    false
}

/// Lint one file's source under the given rule classes. `path` is used
/// only for reporting.
pub fn lint_source(path: &Path, src: &str, class: FileClass) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(src);
    let (allows, bad_allows) = collect_allows(src);
    let test_regions = cfg_test_regions(&stripped);
    let in_tests = |line: usize| {
        test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    };
    let allowed = |line: usize, rule: Rule| {
        allows
            .iter()
            .any(|a| a.line == line && a.rule == rule.name())
    };

    let mut out = Vec::new();
    for (line, msg) in bad_allows {
        // Malformed annotations are reported even inside test regions —
        // they indicate the escape hatch is being used wrong.
        out.push(Violation {
            file: path.to_path_buf(),
            line,
            rule: Rule::BadAllow,
            message: msg,
        });
    }
    let mut push = |line: usize, rule: Rule, message: String| {
        if !in_tests(line) && !allowed(line, rule) {
            out.push(Violation {
                file: path.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();

    for (idx, text) in stripped.lines().enumerate() {
        let line = idx + 1;

        if class.panic_rules || class.panic_call_rules {
            for tok in PANIC_TOKENS {
                if text.contains(tok) {
                    push(
                        line,
                        Rule::Panic,
                        format!(
                            "`{}` in recovery-critical code; return an error instead",
                            tok
                        ),
                    );
                }
            }
        }
        if class.panic_rules {
            if has_index_expr(text) {
                push(
                    line,
                    Rule::Index,
                    "panicking slice/array index in recovery-critical code; use .get()".into(),
                );
            }
            if text.contains("let _ =") {
                push(
                    line,
                    Rule::Discard,
                    "`let _ =` discards a result in recovery-critical code".into(),
                );
            }
        }

        if class.print_rules {
            // `has_word` keeps `println!` from also matching inside
            // `eprintln!` (and `print!` inside `println!`).
            for tok in ["println!", "eprintln!", "print!", "eprint!"] {
                if has_word(text, tok) {
                    push(
                        line,
                        Rule::Print,
                        format!(
                            "raw `{tok}` in library code; emit an obskit event/metric \
                             or return the text to the caller"
                        ),
                    );
                }
            }
        }

        if class.sleep_rules && text.contains("thread::sleep") {
            push(
                line,
                Rule::Sleep,
                "raw `thread::sleep` in recovery code; waits must go through \
                 `ReconnectPolicy`'s budgeted `Backoff`"
                    .into(),
            );
        }

        if class.error_rules {
            if text.contains("Box<dyn Error") || text.contains("Box<dyn std::error::Error") {
                push(
                    line,
                    Rule::Error,
                    "type-erased `Box<dyn Error>`; use the crate error type".into(),
                );
            }
            if text.contains(".ok().unwrap()") {
                push(
                    line,
                    Rule::Error,
                    "`.ok().unwrap()` discards the error before panicking on it".into(),
                );
            }
        }

        if class.lock_rules {
            // Liveness bookkeeping happens before this line's closers so
            // a guard bound at depth d dies once depth drops below d.
            if !guards.is_empty() {
                for tok in BLOCKING_TOKENS {
                    if !text.contains(tok) {
                        continue;
                    }
                    for g in &guards {
                        // A wait that names the guard releases it
                        // atomically (condvar idiom) — allowed.
                        if has_word(text, &g.name) {
                            continue;
                        }
                        push(
                            line,
                            Rule::Lock,
                            format!(
                                "blocking call `{tok}` while guard `{}` from line {} is held",
                                g.name, g.line
                            ),
                        );
                    }
                }
            }

            if let Some((name, body_scoped)) = guard_binding(text) {
                // An `if let`/`while let` guard lives only inside the
                // body block that opens on this line, so it is recorded
                // one level deeper and dies when that block closes.
                let depth = if body_scoped { depth + 1 } else { depth };
                guards.push(LiveGuard { name, depth, line });
            }
            for ch in text.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
            // Explicit early release via `drop(guard)`.
            guards.retain(|g| !text.contains(&format!("drop({})", g.name)));
        }
    }

    out.sort_by_key(|v| v.line);
    out
}

/// Extract every `crashpoint!("name")` invocation in non-test code,
/// returning `(line, name)` pairs. The macro site is located on stripped
/// source (so commented-out invocations don't count) and the name literal
/// is read back from the original source at the same byte offset (the
/// stripper blanks string contents).
pub fn crashpoint_names(src: &str) -> Vec<(usize, String)> {
    let stripped = strip_comments_and_strings(src);
    let test_regions = cfg_test_regions(&stripped);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = stripped[from..].find("crashpoint!(") {
        let at = from + rel;
        let mut j = at + "crashpoint!(".len();
        from = j;
        let bytes = src.as_bytes();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'"' {
            continue; // not a string literal; the macro itself rejects this
        }
        let Some(close) = src[j + 1..].find('"') else {
            continue;
        };
        let line = stripped[..at].matches('\n').count() + 1;
        if test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
        {
            continue;
        }
        out.push((line, src[j + 1..j + 1 + close].to_string()));
    }
    out
}

/// Check workspace-wide uniqueness of crashpoint names. `sites` holds
/// `(file, line, name)` for every non-test invocation; each name reused
/// across sites yields one violation per duplicate site.
pub fn crashpoint_duplicates(sites: &[(PathBuf, usize, String)]) -> Vec<Violation> {
    let mut first: std::collections::HashMap<&str, (&PathBuf, usize)> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for (file, line, name) in sites {
        match first.get(name.as_str()) {
            None => {
                first.insert(name, (file, *line));
            }
            Some((ffile, fline)) => {
                out.push(Violation {
                    file: file.clone(),
                    line: *line,
                    rule: Rule::Crashpoint,
                    message: format!(
                        "crashpoint name {name:?} already used at {}:{fline}; \
                         names must be unique for `name#nth` replay specs",
                        ffile.display()
                    ),
                });
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, skipping `fixtures`
/// directories (they contain deliberate violations for the linter's own
/// tests).
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src` tree under the workspace root. Returns all
/// violations, sorted by path and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Vec::new();
    let mut crashpoints: Vec<(PathBuf, usize, String)> = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&file)?;
        let rel_path = PathBuf::from(&rel);
        out.extend(lint_source(&rel_path, &src, classify(&rel)));
        for (line, name) in crashpoint_names(&src) {
            crashpoints.push((rel_path.clone(), line, name));
        }
    }
    out.extend(crashpoint_duplicates(&crashpoints));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .expect(\n/* panic!( */ let b = 'c';\n";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(!s.contains("panic!("));
        assert!(s.contains("let a ="));
        assert!(s.contains("let b ="));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"a \" .unwrap() \"#; fn f<'a>(x: &'a str) {}";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let stripped = strip_comments_and_strings(src);
        let regions = cfg_test_regions(&stripped);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn allow_requires_reason() {
        let (allows, bad) = collect_allows("x(); // lint:allow(panic)\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        let (allows, bad) = collect_allows("x(); // lint:allow(panic): checked above\n");
        assert_eq!(bad.len(), 0);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn comment_only_allow_applies_to_next_line() {
        let src = "// lint:allow(index): bounds checked by caller\nlet x = v[0];\n";
        let (allows, bad) = collect_allows(src);
        assert!(bad.is_empty());
        assert_eq!(allows[0].line, 2);
        let v = lint_source(
            Path::new("t.rs"),
            src,
            FileClass {
                panic_rules: true,
                ..FileClass::default()
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn index_heuristic_distinguishes_uses() {
        assert!(has_index_expr("let x = data[pos];"));
        assert!(has_index_expr("f()[0]"));
        assert!(!has_index_expr("#[cfg(test)]"));
        assert!(!has_index_expr("let v = vec![1, 2];"));
        assert!(!has_index_expr("let [a, b] = pair;"));
        assert!(!has_index_expr("let x: [u8; 4] = y;"));
    }

    #[test]
    fn crashpoint_names_extracted_outside_tests() {
        let src = "fn f() {\n    faultkit::crashpoint!(\"wal.append\");\n}\n\
                   // crashpoint!(\"commented.out\")\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { crashpoint!(\"test.only\"); }\n}\n";
        let names = crashpoint_names(src);
        assert_eq!(names, vec![(2, "wal.append".to_string())]);
    }

    #[test]
    fn duplicate_crashpoint_names_flagged() {
        let sites = vec![
            (PathBuf::from("a.rs"), 3, "wal.append".to_string()),
            (PathBuf::from("b.rs"), 9, "wal.append".to_string()),
            (PathBuf::from("b.rs"), 12, "wal.flush".to_string()),
        ];
        let v = crashpoint_duplicates(&sites);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, PathBuf::from("b.rs"));
        assert_eq!(v[0].line, 9);
        assert_eq!(v[0].rule, Rule::Crashpoint);
    }

    #[test]
    fn word_match_is_delimited() {
        assert!(has_word("wait(&mut state)", "state"));
        assert!(!has_word("wait(&mut state2)", "state"));
        assert!(!has_word("restate()", "state"));
    }
}
