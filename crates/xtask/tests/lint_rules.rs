//! Fixture-driven tests for the lint engine: every rule family firing,
//! every rule family passing, the `lint:allow` escape hatch, the
//! `#[cfg(test)]` exemption, and the malformed-annotation check.

use std::path::{Path, PathBuf};

use xtask::{classify, lint_source, FileClass, Rule, Violation};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    (path, src)
}

fn scan(name: &str, class: FileClass) -> Vec<Violation> {
    let (path, src) = fixture(name);
    lint_source(&path, &src, class)
}

const ALL_RULES: FileClass = FileClass {
    panic_rules: true,
    panic_call_rules: true,
    lock_rules: true,
    error_rules: true,
    sleep_rules: true,
    print_rules: true,
};

fn lines_of(violations: &[Violation], rule: Rule) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn panic_family_fires_on_each_token() {
    let v = scan(
        "panic_violations.rs",
        FileClass {
            panic_rules: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lines_of(&v, Rule::Panic), vec![5, 9, 14, 16]);
    assert_eq!(lines_of(&v, Rule::Index), vec![20]);
    assert_eq!(lines_of(&v, Rule::Discard), vec![24]);
    // Waived lines, comments, strings, and the #[cfg(test)] module
    // produced nothing beyond the six above.
    assert_eq!(v.len(), 6, "{v:#?}");
}

#[test]
fn allow_waives_same_line_and_next_line() {
    let v = scan(
        "panic_violations.rs",
        FileClass {
            panic_rules: true,
            ..FileClass::default()
        },
    );
    // `allowed_unwrap` (trailing annotation) and `allowed_index`
    // (comment-line annotation) are absent from the findings.
    let (_, src) = fixture("panic_violations.rs");
    let allowed_unwrap_line = src
        .lines()
        .position(|l| l.contains("lint:allow(panic): fixture"))
        .unwrap()
        + 1;
    assert!(lines_of(&v, Rule::Panic)
        .iter()
        .all(|&l| l != allowed_unwrap_line));
}

#[test]
fn cfg_test_module_is_exempt() {
    let (_, src) = fixture("panic_violations.rs");
    let first_test_line = src
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap()
        + 1;
    let v = scan("panic_violations.rs", ALL_RULES);
    assert!(
        v.iter().all(|f| f.line < first_test_line),
        "violations inside #[cfg(test)]: {v:#?}"
    );
}

#[test]
fn lock_family_fires_and_respects_releases() {
    let v = scan(
        "lock_violations.rs",
        FileClass {
            lock_rules: true,
            ..FileClass::default()
        },
    );
    // Guard held across recv (6), blocking inside an `if let` body whose
    // scrutinee holds a read guard (34), the classic `while let … .lock()`
    // footgun (42), a method-chain write guard (50), and file I/O under a
    // guard (56). The condvar wait, drop(), scope-exit, post-body and
    // waived cases must stay quiet. (Acquisition *order* now lives in
    // `cargo xtask analyze`, not here.)
    assert_eq!(lines_of(&v, Rule::Lock), vec![6, 34, 42, 50, 56]);
    assert_eq!(v.len(), 5, "{v:#?}");
}

#[test]
fn error_family_fires_on_erasure_and_laundering() {
    let v = scan(
        "error_violations.rs",
        FileClass {
            error_rules: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lines_of(&v, Rule::Error), vec![5, 10, 16]);
    assert_eq!(v.len(), 3, "{v:#?}");
}

#[test]
fn sleep_rule_fires_outside_waivers_and_tests() {
    let v = scan(
        "sleep_violations.rs",
        FileClass {
            sleep_rules: true,
            ..FileClass::default()
        },
    );
    // The raw sleep fires; the waived site and the #[cfg(test)] module
    // stay quiet.
    assert_eq!(lines_of(&v, Rule::Sleep), vec![4]);
    assert_eq!(v.len(), 1, "{v:#?}");
}

#[test]
fn print_rule_fires_in_library_code_only() {
    let v = scan(
        "print_violations.rs",
        FileClass {
            print_rules: true,
            ..FileClass::default()
        },
    );
    // All four macros fire once each; the waived site, the string, the
    // comment, and the #[cfg(test)] module stay quiet.
    assert_eq!(lines_of(&v, Rule::Print), vec![4, 5, 6, 7]);
    assert_eq!(v.len(), 4, "{v:#?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let v = scan("clean.rs", ALL_RULES);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn allow_without_reason_is_flagged_and_does_not_waive() {
    let v = scan(
        "bad_allow.rs",
        FileClass {
            panic_rules: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lines_of(&v, Rule::BadAllow), vec![4]);
    // The malformed annotation does NOT suppress the underlying finding.
    assert_eq!(lines_of(&v, Rule::Panic), vec![4]);
}

#[test]
fn classify_maps_recovery_critical_paths() {
    assert!(classify("crates/core/src/session.rs").panic_rules);
    assert!(classify("crates/core/src/persist.rs").panic_rules);
    assert!(classify("crates/sqlengine/src/wal/log.rs").panic_rules);
    assert!(classify("crates/wire/src/server.rs").panic_rules);
    assert!(!classify("crates/sqlengine/src/sql/parser.rs").panic_rules);

    assert!(classify("crates/sqlengine/src/txn/locks.rs").lock_rules);
    assert!(classify("crates/sqlengine/src/storage/buffer.rs").lock_rules);
    assert!(!classify("crates/core/src/session.rs").lock_rules);

    // Everything scanned gets error hygiene.
    assert!(classify("crates/workloads/src/lib.rs").error_rules);

    // Recovery code may not sleep outside the budgeted backoff.
    assert!(classify("crates/core/src/session.rs").sleep_rules);
    assert!(classify("crates/core/src/config.rs").sleep_rules);
    assert!(!classify("crates/sqlengine/src/engine.rs").sleep_rules);

    // The engine, wire and faultkit crates are promoted to the
    // panic-call rule.
    assert!(classify("crates/sqlengine/src/catalog.rs").panic_call_rules);
    assert!(classify("crates/sqlengine/src/sql/parser.rs").panic_call_rules);
    assert!(classify("crates/wire/src/protocol.rs").panic_call_rules);
    assert!(classify("crates/faultkit/src/net.rs").panic_call_rules);
    assert!(!classify("crates/workloads/src/lib.rs").panic_call_rules);

    // Library crates may not write raw stdio; bench/xtask binaries may.
    assert!(classify("crates/core/src/session.rs").print_rules);
    assert!(classify("crates/obskit/src/export.rs").print_rules);
    assert!(!classify("crates/bench/src/lib.rs").print_rules);
    assert!(!classify("crates/xtask/src/main.rs").print_rules);
}

#[test]
fn workspace_lint_is_clean() {
    // The repo itself must stay lint-clean; this is the same scan
    // `cargo xtask lint` runs, so a regression fails the test suite too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let v = xtask::lint_workspace(root).unwrap();
    assert!(v.is_empty(), "workspace lint regressions: {v:#?}");
}
