//! Fixture: seeded lock-order inversion. `a_then_b` and `b_then_a`
//! acquire the two cells in opposite order, so the inferred lock-order
//! graph has a cycle. Scanned by `analyze_rules.rs`, never compiled.

struct Ledger {
    entries: Mutex<Vec<u64>>,
}

struct Roster {
    members: RwLock<Vec<u64>>,
}

fn a_then_b(ledger: &Ledger, roster: &Roster) {
    let entries = ledger.entries.lock();
    let members = roster.members.write();
    drop(members);
    drop(entries);
}

fn b_then_a(ledger: &Ledger, roster: &Roster) {
    let members = roster.members.write();
    let entries = ledger.entries.lock();
    drop(entries);
    drop(members);
}
