//! Fixture: a durability site without a crashpoint. The function emits a
//! `persist.*` obskit event but contains no `crashpoint!`, so crash
//! testing cannot interrupt it — the durability pass must flag it.
//! Scanned by `analyze_rules.rs`, never compiled.

fn persist_meta() {
    obskit::event!("persist.meta.write");
}

fn covered_persist() {
    faultkit::crashpoint!("persist.meta.commit");
    obskit::event!("persist.meta.commit");
}
