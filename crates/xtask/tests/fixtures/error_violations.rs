//! Fixture: error-hygiene rule family. Not compiled — scanned by
//! `lint_rules.rs` with `error_rules` enabled (the default for all
//! library code).

fn erased() -> Result<(), Box<dyn Error>> {
    // line 5: error (type-erased)
    Ok(())
}

fn erased_verbose() -> Result<(), Box<dyn std::error::Error>> {
    // line 10: error
    Ok(())
}

fn laundered(r: Result<u32, String>) -> u32 {
    r.ok().unwrap() // line 16: error (.ok().unwrap())
}

fn proper(r: Result<u32, String>) -> Result<u32, String> {
    r
}

#[cfg(test)]
mod tests {
    fn test_helpers_are_exempt(r: Result<u32, String>) -> u32 {
        r.ok().unwrap()
    }
}
