//! Fixture: panic-path rule family. Not compiled — scanned by
//! `lint_rules.rs` with `panic_rules` enabled.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: panic
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present") // line 9: panic
}

fn bad_macros(x: u32) {
    if x > 3 {
        panic!("boom"); // line 14: panic
    }
    unreachable!() // line 16: panic
}

fn bad_index(v: &[u8]) -> u8 {
    v[0] // line 20: index
}

fn bad_discard() {
    let _ = std::fs::remove_file("x"); // line 24: discard
}

fn allowed_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic): fixture shows a justified waiver
}

fn allowed_index(v: &[u8]) -> u8 {
    // lint:allow(index): bounds established by caller contract
    v[0]
}

fn strings_and_comments_do_not_count() {
    // .unwrap() in a comment is fine
    let _s = "calling .unwrap() in a string is fine";
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let s = &[1u8, 2][..];
        let _ = s[0];
        panic!("even this is exempt");
    }
}
