// Fixture: stdio-hygiene (`print`) rule.

fn bad() {
    println!("library code writing to stdout");
    eprintln!("library code writing to stderr");
    print!("no newline either");
    eprint!("still stdio");
}

fn waived() {
    // lint:allow(print): fixture — sanctioned diagnostic
    eprintln!("allowed with a justification");
}

fn quiet() {
    let s = "println!(\"inside a string does not count\")";
    let _ = s;
    // println!("commented out does not count");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_print() {
        println!("tests are exempt");
    }
}
