//! Fixture: a crashpoint no test scenario ever references. The scenario
//! pass must flag it — an unreachable crashpoint is dead fault coverage.
//! Scanned by `analyze_rules.rs`, never compiled.

fn flush_orphan() {
    faultkit::crashpoint!("wal.orphan.flush");
}
