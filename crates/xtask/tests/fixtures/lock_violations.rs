//! Fixture: lock-discipline rule family. Not compiled — scanned by
//! `lint_rules.rs` with `lock_rules` + `lock_order_rules` enabled.

fn blocks_while_holding_guard(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _v = rx.recv(); // line 6: lock (guard held across recv)
    drop(guard);
}

fn condvar_wait_names_the_guard(m: &Mutex<bool>, cv: &Condvar) {
    let mut state = m.lock();
    while !*state {
        cv.wait(&mut state); // OK: wait releases `state` atomically
    }
}

fn drop_releases_before_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _x = *guard;
    drop(guard);
    let _v = rx.recv(); // OK: guard explicitly dropped
}

fn scope_releases_before_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    {
        let guard = m.lock();
        let _x = *guard;
    }
    let _v = rx.recv(); // OK: guard died with its block
}

fn violates_lock_order(pool: &BufferPool, mgr: &LockManager) {
    let frame = pool.frame();
    let page = frame.data.write();
    let _locks = mgr.state.lock(); // line 35: lock_order (rank 0 under rank 2)
    drop(page);
}

fn ascending_order_is_fine(mgr: &LockManager, pool: &BufferPool) {
    let _locks = mgr.state.lock();
    let _inner = pool.inner.lock(); // OK: rank 0 then rank 1
}

fn io_while_holding_guard(m: &Mutex<u32>) {
    let guard = m.lock();
    let _data = fs::read("wal.log"); // line 46: lock (file I/O under guard)
    drop(guard);
}

fn waived_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _v = rx.recv(); // lint:allow(lock): fixture shows a justified waiver
    drop(guard);
}
