//! Fixture: lock-discipline rule family. Not compiled — scanned by
//! `lint_rules.rs` with `lock_rules` enabled.

fn blocks_while_holding_guard(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _v = rx.recv(); // line 6: lock (guard held across recv)
    drop(guard);
}

fn condvar_wait_names_the_guard(m: &Mutex<bool>, cv: &Condvar) {
    let mut state = m.lock();
    while !*state {
        cv.wait(&mut state); // OK: wait releases `state` atomically
    }
}

fn drop_releases_before_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _x = *guard;
    drop(guard);
    let _v = rx.recv(); // OK: guard explicitly dropped
}

fn scope_releases_before_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    {
        let guard = m.lock();
        let _x = *guard;
    }
    let _v = rx.recv(); // OK: guard died with its block
}

fn if_let_guard_lives_in_its_body(m: &RwLock<Option<u32>>, rx: &Receiver<u32>) {
    if let Some(v) = m.read().as_deref() {
        let _x = rx.recv(); // line 34: lock (read guard live through the body)
        let _ = v;
    }
    let _v = rx.recv(); // OK: the if-let guard died with its body
}

fn while_let_guard_lives_in_its_body(q: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    while let Some(item) = q.lock().pop() {
        let _x = rx.recv(); // line 42: lock (scrutinee guard live through the body)
        let _ = item;
    }
    let _v = rx.recv(); // OK: released once the loop ends
}

fn method_chain_guard_is_tracked(pool: &BufferPool, rx: &Receiver<u32>) {
    let page = pool.frames.first().data.write();
    let _v = rx.recv(); // line 50: lock (chained write guard held)
    drop(page);
}

fn io_while_holding_guard(m: &Mutex<u32>) {
    let guard = m.lock();
    let _data = fs::read("wal.log"); // line 56: lock (file I/O under guard)
    drop(guard);
}

fn waived_blocking(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _v = rx.recv(); // lint:allow(lock): fixture shows a justified waiver
    drop(guard);
}
