//! Fixture: lock-striped cells. A `Vec<Mutex<_>>`, a `[RwLock<_>; N]`
//! array, and a shard struct holding an inner mutex must all register as
//! lock cells, and `receiver[index].lock()` acquisition sites must
//! resolve to the striped cell regardless of the index expression.

use parking_lot::{Mutex, RwLock};

struct Stripe {
    state: Mutex<u32>,
}

struct Pool {
    shards: Vec<Mutex<u32>>,
    stripes: Vec<Stripe>,
    banks: [RwLock<u32>; 4],
}

impl Pool {
    fn pick(&self, i: usize) -> usize {
        i % 4
    }

    fn vec_cell(&self, i: usize) {
        let g = self.shards[i].lock();
        drop(g);
    }

    fn nested_cell(&self, i: usize) {
        let g = self.stripes[i].state.lock();
        drop(g);
    }

    fn array_cell(&self, i: usize) {
        let g = self.banks[i].read();
        drop(g);
    }

    fn computed_index(&self, i: usize) {
        let g = self.shards[self.pick(i)].lock();
        drop(g);
    }

    fn ordered(&self, i: usize) {
        let a = self.shards[i].lock();
        let b = self.stripes[i].state.lock();
        drop(b);
        drop(a);
    }
}
