//! Fixture: passes every rule family — the engine must report nothing.

fn careful(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

fn safe_index(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

fn ordered_locks(mgr: &LockManager, pool: &BufferPool) {
    let _state = mgr.state.lock();
    let _inner = pool.inner.lock();
}

fn release_then_block(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let x = {
        let guard = m.lock();
        *guard
    };
    x + rx.recv().unwrap_or_default()
}
