//! Fixture: consistent lock order. Both functions take `entries` before
//! `members`, including one acquisition reached through a callee, so the
//! graph has edges but no cycle. Scanned by `analyze_rules.rs`.

struct Ledger {
    entries: Mutex<Vec<u64>>,
}

struct Roster {
    members: RwLock<Vec<u64>>,
}

fn both_in_order(ledger: &Ledger, roster: &Roster) {
    let entries = ledger.entries.lock();
    let members = roster.members.write();
    drop(members);
    drop(entries);
}

fn outer_then_callee(ledger: &Ledger, roster: &Roster) {
    let entries = ledger.entries.lock();
    touch_members(roster);
    drop(entries);
}

fn touch_members(roster: &Roster) {
    let members = roster.members.write();
    drop(members);
}
