//! Fixture: a `lint:allow` with no justification is itself a violation.

fn unjustified(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic)
}
