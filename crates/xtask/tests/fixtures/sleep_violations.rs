use std::time::Duration;

pub fn bad_wait() {
    std::thread::sleep(Duration::from_millis(50));
}

pub fn sanctioned_wait() {
    // lint:allow(sleep): fixture — models the policy's one budgeted wait site
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    pub fn test_only_wait() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
