//! Fixture for the gauge-balance pass: `conn.leak` only ever goes up,
//! `conn.live` is balanced, `conn.peak` is max-driven (exempt), and
//! `conn.sized` takes a variable delta (out of scope).

fn open() {
    obskit::metrics::global().gauge("conn.leak").add(1);
    obskit::metrics::global().gauge("conn.live").add(1);
}

fn close(n: i64) {
    obskit::metrics::global().gauge("conn.live").add(-1);
    obskit::metrics::global().gauge("conn.peak").max(3);
    obskit::metrics::global().gauge("conn.sized").add(n);
}
