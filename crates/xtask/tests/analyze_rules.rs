//! Fixture-driven tests for `cargo xtask analyze`: the lock-order graph
//! and cycle detection, the coverage passes, waivers, the lockcheck
//! witness check, and a self-test that the real workspace stays clean.

use std::path::Path;

use xtask::analyze::{analyze, check_witness, load_workspace, Workspace};
use xtask::Rule;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap()
}

fn ws_of(name: &str, tests: &[&str]) -> Workspace {
    let src = fixture(name);
    Workspace::from_sources(&[(name, "fixturecrate", src.as_str())], tests)
}

#[test]
fn seeded_cycle_is_flagged_with_full_chain() {
    let a = analyze(&ws_of("analyze_cycle.rs", &[]));
    let deadlocks: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.rule == Rule::Deadlock)
        .collect();
    assert_eq!(deadlocks.len(), 1, "{:#?}", a.violations);
    let msg = &deadlocks[0].message;
    // The chain names both cells and carries a file:line per edge.
    assert!(msg.contains("Ledger::entries"), "{msg}");
    assert!(msg.contains("Roster::members"), "{msg}");
    assert!(msg.contains("analyze_cycle.rs:"), "{msg}");
    assert!(
        msg.contains("a_then_b") && msg.contains("b_then_a"),
        "{msg}"
    );
    assert_eq!(a.stats.cycles, 1);
}

#[test]
fn acyclic_fixture_passes_with_edges_present() {
    let a = analyze(&ws_of("analyze_acyclic.rs", &[]));
    assert!(a.violations.is_empty(), "{:#?}", a.violations);
    assert_eq!(a.stats.cycles, 0);
    // Both the direct and the through-callee acquisition produce the
    // same ordered edge.
    assert!(a
        .graph
        .edges
        .contains_key(&("Ledger::entries".into(), "Roster::members".into())));
    let site = &a.graph.edges[&("Ledger::entries".into(), "Roster::members".into())];
    assert!(site.file.ends_with("analyze_acyclic.rs"));
}

#[test]
fn lock_edge_waiver_suppresses_one_direction() {
    // Waiving the inverted acquisition in `b_then_a` removes the back
    // edge, so the cycle disappears.
    let src = fixture("analyze_cycle.rs").replace(
        "    let entries = ledger.entries.lock();\n    drop(entries);\n    drop(members);",
        "    // analyze:allow(lock_edge): fixture waiver for the inversion\n    \
         let entries = ledger.entries.lock();\n    drop(entries);\n    drop(members);",
    );
    assert!(src.contains("analyze:allow"), "replacement failed");
    let ws = Workspace::from_sources(&[("analyze_cycle.rs", "fixturecrate", src.as_str())], &[]);
    let a = analyze(&ws);
    assert!(a.violations.is_empty(), "{:#?}", a.violations);
    assert_eq!(a.stats.edges_waived, 1);
}

#[test]
fn bad_analyze_allow_is_flagged() {
    let src = "fn f() {} // analyze:allow(lock_edge)\n";
    let ws = Workspace::from_sources(&[("x.rs", "c", src)], &[]);
    let a = analyze(&ws);
    assert_eq!(a.violations.len(), 1);
    assert_eq!(a.violations[0].rule, Rule::BadAllow);
}

#[test]
fn sharded_cells_register_and_indexed_acquisitions_resolve() {
    let a = analyze(&ws_of("analyze_sharded.rs", &[]));
    assert!(a.violations.is_empty(), "{:#?}", a.violations);
    assert_eq!(a.stats.cycles, 0);
    // Every striped cell shape is a graph node: Vec<Mutex<_>>,
    // Vec<Shard> with an inner mutex, and a [RwLock<_>; N] array.
    for n in ["Pool::shards", "Stripe::state", "Pool::banks"] {
        assert!(a.graph.nodes.contains(n), "missing node {n}");
    }
    // Indexed acquisitions resolved — none fell through as unresolved
    // `.lock()`-shaped sites.
    assert_eq!(a.stats.acq_unresolved, 0, "{:?}", a.stats);
    // The two-stripe acquisition order is an inferred edge, with the
    // index expressions (including a computed `self.pick(i)`) skipped.
    assert!(
        a.graph
            .edges
            .contains_key(&("Pool::shards".into(), "Stripe::state".into())),
        "edges: {:#?}",
        a.graph.edges.keys().collect::<Vec<_>>()
    );
}

#[test]
fn uncovered_crashpoint_is_flagged_and_prefix_literals_cover() {
    let a = analyze(&ws_of("analyze_uncovered_crashpoint.rs", &[]));
    let scen: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.rule == Rule::Scenario)
        .collect();
    assert_eq!(scen.len(), 1, "{:#?}", a.violations);
    assert!(scen[0].message.contains("wal.orphan.flush"));

    // An exact literal in the test corpus covers it…
    let covered = analyze(&ws_of(
        "analyze_uncovered_crashpoint.rs",
        &["fn t() { replay(\"wal.orphan.flush\"); }"],
    ));
    assert!(covered.violations.is_empty(), "{:#?}", covered.violations);

    // …and so does a dot-terminated prefix (family scenario).
    let prefixed = analyze(&ws_of(
        "analyze_uncovered_crashpoint.rs",
        &["const FAMILIES: &[&str] = &[\"wal.\"];"],
    ));
    assert!(prefixed.violations.is_empty(), "{:#?}", prefixed.violations);
}

#[test]
fn uninstrumented_durability_site_is_flagged() {
    let a = analyze(&ws_of(
        "analyze_uninstrumented_durability.rs",
        &["const FAMILIES: &[&str] = &[\"persist.\"];"],
    ));
    let dur: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.rule == Rule::Durability)
        .collect();
    assert_eq!(dur.len(), 1, "{:#?}", a.violations);
    // `persist_meta` is flagged; `covered_persist` (same family, has a
    // crashpoint) is not.
    assert!(
        dur[0].message.contains("persist_meta"),
        "{}",
        dur[0].message
    );
}

#[test]
fn unbalanced_gauge_is_flagged_and_waivable() {
    let a = analyze(&ws_of("analyze_gauge_balance.rs", &[]));
    let gauges: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.rule == Rule::GaugeBalance)
        .collect();
    // Only the ratchet-up gauge is flagged: the balanced pair, the
    // max-driven peak and the variable-delta site all pass.
    assert_eq!(gauges.len(), 1, "{:#?}", a.violations);
    assert!(gauges[0].message.contains("conn.leak"), "{:#?}", gauges[0]);

    let src = fixture("analyze_gauge_balance.rs").replace(
        "    obskit::metrics::global().gauge(\"conn.leak\").add(1);",
        "    // analyze:allow(gauge_balance): fixture waiver — drained out of band\n    \
         obskit::metrics::global().gauge(\"conn.leak\").add(1);",
    );
    assert!(src.contains("analyze:allow"), "replacement failed");
    let ws = Workspace::from_sources(
        &[("analyze_gauge_balance.rs", "fixturecrate", src.as_str())],
        &[],
    );
    assert!(
        analyze(&ws).violations.is_empty(),
        "{:#?}",
        analyze(&ws).violations
    );
}

#[test]
fn witness_consistent_and_contradicting_edges() {
    let a = analyze(&ws_of("analyze_acyclic.rs", &[]));
    // Consistent with the static order: no findings.
    let ok = r#"{"lockcheck":1,"edges":[{"from":"Ledger::entries","to":"Roster::members"}]}"#;
    assert!(check_witness(&a.graph, ok, "w.json").is_empty());

    // The reverse order contradicts the static graph.
    let bad = r#"{"lockcheck":1,"edges":[{"from":"Roster::members","to":"Ledger::entries"}]}"#;
    let v = check_witness(&a.graph, bad, "w.json");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, Rule::Witness);
    assert!(v[0].message.contains("contradicts"), "{}", v[0].message);

    // A lock name the analyzer has never seen is drift.
    let drift = r#"{"lockcheck":1,"edges":[{"from":"Ghost::cell","to":"Ledger::entries"}]}"#;
    let v = check_witness(&a.graph, drift, "w.json");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert!(v[0].message.contains("drift"), "{}", v[0].message);

    // Garbage input fails closed.
    assert!(!check_witness(&a.graph, "not json", "w.json").is_empty());
}

#[test]
fn workspace_analysis_is_clean_and_finds_the_real_graph() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let ws = load_workspace(root).unwrap();
    let a = analyze(&ws);
    assert!(a.violations.is_empty(), "{:#?}", a.violations);
    assert_eq!(a.stats.cycles, 0);

    // The storage stack's real acquisition order must be inferred: the
    // buffer pool flushes a frame under its stripe's lock (shards →
    // data), the WAL rule flushes the log under the frame lock (data →
    // tail), the flush appends to the durable store (tail → durable),
    // and eviction writes the page out (data → pages).
    for (from, to) in [
        ("BufferPool::shards", "Frame::data"),
        ("Frame::data", "LogManager::tail"),
        ("LogManager::tail", "LogStore::durable"),
        ("Frame::data", "MemDisk::pages"),
    ] {
        assert!(
            a.graph.edges.contains_key(&(from.into(), to.into())),
            "missing inferred edge {from} -> {to}; edges: {:#?}",
            a.graph.edges.keys().collect::<Vec<_>>()
        );
    }
    // Every instrumented lockcheck cell is a node the witness can match.
    for n in [
        "LockShard::state",
        "BufferPool::shards",
        "LogManager::group",
        "Frame::data",
        "LogManager::tail",
        "LogStore::durable",
        "MemDisk::pages",
    ] {
        assert!(a.graph.nodes.contains(n), "missing node {n}");
    }
    assert!(a.stats.crashpoints >= 10, "{:?}", a.stats);
    assert!(a.stats.phases_checked >= 6, "{:?}", a.stats);
    assert!(a.stats.functions > 100, "{:?}", a.stats);
    // The bench-coverage pass sees every bench binary and, in a real
    // checkout, the blessed baseline directories (full set + ci subset).
    assert!(a.stats.bench_bins >= 11, "{:?}", a.stats);
    assert!(ws.baseline_dirs.len() >= 2, "{:?}", ws.baseline_dirs);
}

#[test]
fn bench_bin_without_emit_json_is_flagged_and_waivable() {
    let flagged = "fn main() {\n    run_workload();\n}\n";
    let a = analyze(&Workspace::from_sources(
        &[("crates/bench/src/bin/fig9_lag.rs", "bench", flagged)],
        &[],
    ));
    assert_eq!(a.violations.len(), 1, "{:#?}", a.violations);
    assert_eq!(a.violations[0].rule, Rule::Bench);
    assert!(
        a.violations[0].message.contains("never calls emit_json"),
        "{}",
        a.violations[0].message
    );
    assert_eq!(a.stats.bench_bins, 1);

    // A twin-emitting bin is clean, and the waiver silences the rest.
    let emitting = "fn main() {\n    bench::emit_json(\"fig9_lag\", &[]);\n}\n";
    let waived = "// analyze:allow(bench): prints a table only, by design\nfn main() {\n    run_workload();\n}\n";
    for src in [emitting, waived] {
        let a = analyze(&Workspace::from_sources(
            &[("crates/bench/src/bin/fig9_lag.rs", "bench", src)],
            &[],
        ));
        assert!(a.violations.is_empty(), "{src:?}: {:#?}", a.violations);
    }

    // Helper modules under bin/ are not binaries and carry no duty.
    let a = analyze(&Workspace::from_sources(
        &[("crates/bench/src/bin/common/util.rs", "bench", flagged)],
        &[],
    ));
    assert!(a.violations.is_empty(), "{:#?}", a.violations);
    assert_eq!(a.stats.bench_bins, 0);
}

#[test]
fn baseline_drift_is_flagged_in_both_directions() {
    use xtask::analyze::bench::BaselineDir;
    let fig9 = "fn main() { bench::emit_json(\"fig9_lag\", &[]); }\n";
    let fig10 = "fn main() { bench::emit_json(\"fig10_jitter\", &[]); }\n";
    let mut ws = Workspace::from_sources(
        &[
            ("crates/bench/src/bin/fig9_lag.rs", "bench", fig9),
            ("crates/bench/src/bin/fig10_jitter.rs", "bench", fig10),
        ],
        &[],
    );
    ws.baseline_dirs = vec![
        BaselineDir {
            rel: "bench_baselines".to_string(),
            // fig10_jitter has no baseline here; "ghost" has no binary;
            // "adopted" is declared via [gate] extra; "dangling" is an
            // extra entry with no file.
            stems: vec![
                "adopted".to_string(),
                "fig9_lag".to_string(),
                "ghost".to_string(),
            ],
            extra: vec!["adopted".to_string(), "dangling".to_string()],
            manifest_error: None,
        },
        BaselineDir {
            // A curated subset: the stale check applies, completeness
            // does not (fig10_jitter missing here is fine).
            rel: "bench_baselines/ci".to_string(),
            stems: vec!["fig9_lag".to_string(), "stale_sub".to_string()],
            extra: Vec::new(),
            manifest_error: Some("gate.toml:3: unknown key `tolerance`".to_string()),
        },
    ];
    let a = analyze(&ws);
    let msgs: Vec<&str> = a
        .violations
        .iter()
        .map(|v| {
            assert_eq!(v.rule, Rule::Bench, "{v:#?}");
            v.message.as_str()
        })
        .collect();
    assert_eq!(msgs.len(), 5, "{msgs:#?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("stale baseline") && m.contains("\"ghost\"")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("stale baseline") && m.contains("\"stale_sub\"")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("\"dangling\"") && m.contains("no bench_baselines/dangling.json")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("\"fig10_jitter\"") && m.contains("no blessed baseline")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("unreadable gate manifest") && m.contains("unknown key")),
        "{msgs:#?}"
    );
}
