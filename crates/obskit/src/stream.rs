//! Streaming metrics export: an append-only JSON-lines time series of
//! snapshot *deltas*, for long soaks where one end-of-run dump would
//! hide the trajectory (a latency spike during recovery, a gauge that
//! drains late, a batch size that degrades over hours).
//!
//! A [`Recorder`] owns an output file. The first line is a header
//! (`{"obskit_series": 1, "meta": {…}}`); every subsequent call to
//! [`Recorder::mark`] appends one interval line holding what happened
//! since the previous mark: counters and histograms as deltas (via
//! [`Snapshot::diff`], so merging all interval lines onto the first
//! snapshot reconstructs the final one), gauges as absolute levels at
//! the mark. Lines are flushed as written — a crashed soak keeps every
//! completed interval.
//!
//! Marks can be explicit (`mark("seed-7", &snap)` at workload
//! boundaries — fully deterministic) or periodic ([`Recorder::spawn_ticker`]
//! runs a background thread that marks `tick` every interval until its
//! [`Ticker`] guard drops). `cargo xtask bench-gate --series` validates
//! emitted series files: schema, monotone sequence numbers, non-negative
//! deltas, and the manifest's gauge invariants (bounded mid-run, zero by
//! the final interval).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::export;
use crate::metrics::Snapshot;

/// Writes one JSON-lines time series; see the module docs.
pub struct Recorder {
    inner: Mutex<Inner>,
}

struct Inner {
    out: BufWriter<File>,
    prev: Snapshot,
    seq: u64,
}

impl Recorder {
    /// Create (truncate) the series file at `path` and write the header
    /// line. Parent directories are created as needed. The first `mark`
    /// diffs against the empty snapshot, i.e. reports all activity since
    /// process start — call `mark("setup", …)` right after `create` to
    /// separate load/setup work from the intervals under test.
    pub fn create(path: &Path, meta: &BTreeMap<String, String>) -> io::Result<Recorder> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(export::series_header_json(meta).as_bytes())?;
        out.flush()?;
        Ok(Recorder {
            inner: Mutex::new(Inner {
                out,
                prev: Snapshot::default(),
                seq: 0,
            }),
        })
    }

    /// Append one interval line: the delta between the previous mark's
    /// snapshot and `now`, labelled for the timeline. Sequence numbers
    /// start at 1 and increase by 1 per mark.
    pub fn mark(&self, label: &str, now: &Snapshot) -> io::Result<()> {
        let mut g = self.inner.lock();
        g.seq += 1;
        let line = export::series_line_json(g.seq, label, &g.prev.diff(now));
        g.out.write_all(line.as_bytes())?;
        g.out.flush()?;
        g.prev = now.clone();
        Ok(())
    }

    /// Number of interval lines written so far.
    pub fn intervals(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Spawn a background thread that calls `mark("tick", &source())`
    /// every `interval` until the returned [`Ticker`] is dropped (which
    /// signals, joins, and takes a final `tick` mark so the tail of the
    /// run is never lost). Write errors stop the ticker silently — the
    /// series is diagnostics, never load-bearing for the system under
    /// test.
    pub fn spawn_ticker(
        self: &Arc<Self>,
        interval: Duration,
        source: impl Fn() -> Snapshot + Send + 'static,
    ) -> Ticker {
        let recorder = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let (flag, cv) = &*stop2;
            loop {
                let mut stopped = flag.lock();
                if !*stopped {
                    cv.wait_for(&mut stopped, interval);
                }
                let done = *stopped;
                drop(stopped);
                if recorder.mark("tick", &source()).is_err() || done {
                    return;
                }
            }
        });
        Ticker {
            stop,
            handle: Some(handle),
        }
    }
}

/// Guard for a periodic-mark thread; dropping stops it after one final
/// mark.
pub struct Ticker {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Ticker {
    fn drop(&mut self) {
        let (flag, cv) = &*self.stop;
        *flag.lock() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            // A panic on the ticker thread is its own bug; joining must
            // not turn Drop into a double panic.
            // lint:allow(discard): join error is a ticker-thread panic already reported there
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::metrics::Registry;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("obskit-stream-{}-{}", std::process::id(), name));
        p
    }

    fn parse_lines(path: &Path) -> Vec<Json> {
        std::fs::read_to_string(path)
            .expect("series file")
            .lines()
            .map(|l| Json::parse(l).expect("line parses"))
            .collect()
    }

    #[test]
    fn marks_emit_header_and_delta_lines() {
        let path = tmp_path("marks.jsonl");
        let reg = Registry::new();
        let meta = BTreeMap::from([("source".to_string(), "unit".to_string())]);
        let rec = Recorder::create(&path, &meta).expect("create");

        reg.counter("s.c").add(3);
        reg.gauge("s.g").set(5);
        reg.histogram("s.h").record(100);
        rec.mark("first", &reg.snapshot()).expect("mark");

        reg.counter("s.c").add(4);
        reg.gauge("s.g").set(0);
        rec.mark("second", &reg.snapshot()).expect("mark");
        assert_eq!(rec.intervals(), 2);

        let lines = parse_lines(&path);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0].get("obskit_series").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            lines[0]
                .get("meta")
                .and_then(|m| m.get("source"))
                .and_then(Json::as_str),
            Some("unit")
        );
        // Interval 1 carries the activity before the first mark…
        assert_eq!(lines[1].get("seq").and_then(Json::as_f64), Some(1.0));
        assert_eq!(lines[1].get("label").and_then(Json::as_str), Some("first"));
        let c1 = lines[1].get("counters").and_then(|c| c.get("s.c"));
        assert_eq!(c1.and_then(Json::as_f64), Some(3.0));
        // …interval 2 only the delta, with the gauge's absolute level.
        let c2 = lines[2].get("counters").and_then(|c| c.get("s.c"));
        assert_eq!(c2.and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            lines[2]
                .get("gauges")
                .and_then(|g| g.get("s.g"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
        let h2 = lines[2].get("histograms").and_then(|h| h.get("s.h"));
        assert_eq!(
            h2.and_then(|h| h.get("count")).and_then(Json::as_f64),
            Some(0.0),
            "idle histogram contributes an empty delta"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merged_intervals_reconstruct_the_final_snapshot() {
        let path = tmp_path("merge.jsonl");
        let reg = Registry::new();
        let rec = Recorder::create(&path, &BTreeMap::new()).expect("create");
        let mut reconstructed = Snapshot::default();
        for i in 0..5u64 {
            reg.counter("m.c").add(i + 1);
            reg.histogram("m.h").record(i * 10);
            let snap = reg.snapshot();
            let delta = rec.inner.lock().prev.clone().diff(&snap);
            rec.mark(&format!("i{i}"), &snap).expect("mark");
            reconstructed = reconstructed.merge(&delta);
        }
        assert_eq!(reconstructed, reg.snapshot());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ticker_marks_periodically_and_stops_on_drop() {
        let path = tmp_path("ticker.jsonl");
        let reg = Arc::new(Registry::new());
        let rec = Arc::new(Recorder::create(&path, &BTreeMap::new()).expect("create"));
        {
            let reg2 = Arc::clone(&reg);
            let _t = rec.spawn_ticker(Duration::from_millis(5), move || reg2.snapshot());
            reg.counter("t.c").incr();
            // Wait until at least one periodic mark lands (bounded).
            for _ in 0..400 {
                if rec.intervals() >= 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // Drop flushed a final mark, so every pre-drop count is recorded.
        let n = rec.intervals();
        assert!(n >= 1, "ticker never marked");
        let lines = parse_lines(&path);
        assert_eq!(lines.len() as u64, n + 1);
        let total: f64 = lines[1..]
            .iter()
            .map(|l| {
                l.get("counters")
                    .and_then(|c| c.get("t.c"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(total, 1.0);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(rec.intervals(), n, "ticker kept running after drop");
        let _ = std::fs::remove_file(&path);
    }
}
