//! Snapshot exporters: aligned human-readable text and deterministic
//! JSON.
//!
//! Determinism: every map is a `BTreeMap`, histograms serialize their
//! buckets sparsely in index order, and no timestamps are invented — the
//! same snapshot always renders byte-identically, so emitted files diff
//! cleanly across runs with identical measurements.
//!
//! JSON snapshot schema (version 1; see DESIGN.md §10):
//!
//! ```json
//! {
//!   "obskit": 1,
//!   "meta": {"bench": "table2_throughput", "seed": "42"},
//!   "counters": {"wire.faults.drop": 3},
//!   "gauges": {"pool.pages": 512},
//!   "histograms": {
//!     "odbcsim.roundtrip": {
//!       "count": 100, "sum": 12345, "min": 7, "max": 990,
//!       "mean": 123.45, "p50": 127, "p95": 511, "p99": 990,
//!       "buckets": [[3, 10], [4, 90]]
//!     }
//!   },
//!   "events": [
//!     {"seq": 0, "micros": 12, "kind": "span",
//!      "name": "phoenix.recovery.ping", "dur_nanos": 1500, "detail": ""}
//!   ]
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{bucket_bounds, HistogramSnapshot};
use crate::metrics::Snapshot;
use crate::trace::Event;

/// Escape a string for inclusion in a JSON document (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
        h.count,
        h.sum,
        h.min().unwrap_or(0),
        h.max
    );
    let _ = write!(
        out,
        ", \"mean\": {}",
        h.mean().map_or_else(|| "null".into(), json_f64)
    );
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let _ = write!(
            out,
            ", \"{label}\": {}",
            h.quantile(q)
                .map_or_else(|| "null".into(), |v| v.to_string())
        );
    }
    out.push_str(", \"buckets\": [");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c > 0 {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "[{i}, {c}]");
        }
    }
    out.push_str("]}");
    out
}

fn event_json(ev: &Event) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"seq\": {}, \"micros\": {}, \"kind\": {}, \"name\": {}, \"dur_nanos\": {}, \"detail\": {}",
        ev.seq,
        ev.micros,
        json_str(ev.kind.name()),
        json_str(ev.name),
        ev.dur_nanos
            .map_or_else(|| "null".into(), |d| d.to_string()),
        json_str(&ev.detail)
    );
    out.push('}');
    out
}

/// Serialize a metrics snapshot (plus run metadata and an optional event
/// timeline) as a deterministic JSON document — the `bench_results/*.json`
/// twin format.
pub fn snapshot_json(meta: &BTreeMap<String, String>, snap: &Snapshot, events: &[Event]) -> String {
    let mut out = String::from("{\n  \"obskit\": 1,\n  \"meta\": {");
    let mut first = true;
    for (k, v) in meta {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {}", json_str(k), json_str(v));
    }
    out.push_str("},\n  \"counters\": {");
    first = true;
    for (k, v) in &snap.counters {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {v}", json_str(k));
    }
    out.push_str("},\n  \"gauges\": {");
    first = true;
    for (k, v) in &snap.gauges {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {v}", json_str(k));
    }
    out.push_str("},\n  \"histograms\": {");
    first = true;
    for (k, h) in &snap.hists {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {}", json_str(k), hist_json(h));
    }
    out.push_str("\n  },\n  \"events\": [");
    first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}", event_json(ev));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Header line of a JSON-lines time series (see [`crate::stream`]):
/// schema tag plus the run metadata, on one line.
pub fn series_header_json(meta: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{\"obskit_series\": 1, \"meta\": {");
    let mut first = true;
    for (k, v) in meta {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {}", json_str(k), json_str(v));
    }
    out.push_str("}}\n");
    out
}

/// One interval line of a JSON-lines time series: counters and histograms
/// are the *delta* since the previous mark ([`Snapshot::diff`]), gauges
/// are absolute levels at the mark. Single line, deterministic field
/// order.
pub fn series_line_json(seq: u64, label: &str, delta: &Snapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"seq\": {seq}, \"label\": {}", json_str(label));
    out.push_str(", \"counters\": {");
    let mut first = true;
    for (k, v) in &delta.counters {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {v}", json_str(k));
    }
    out.push_str("}, \"gauges\": {");
    first = true;
    for (k, v) in &delta.gauges {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {v}", json_str(k));
    }
    out.push_str("}, \"histograms\": {");
    first = true;
    for (k, h) in &delta.hists {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {}", json_str(k), hist_json(h));
    }
    out.push_str("}}\n");
    out
}

/// Render a snapshot as aligned human-readable text (for stdout dumps
/// and quick inspection; the JSON twin is the machine-readable form).
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let w = snap.counters.keys().map(String::len).max().unwrap_or(0);
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "  {k:<w$}  {v}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let w = snap.gauges.keys().map(String::len).max().unwrap_or(0);
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "  {k:<w$}  {v}");
        }
    }
    if !snap.hists.is_empty() {
        let _ = writeln!(out, "histograms (ns):");
        let w = snap.hists.keys().map(String::len).max().unwrap_or(0);
        for (k, h) in &snap.hists {
            let _ = write!(out, "  {k:<w$}  n={}", h.count);
            if h.count > 0 {
                let _ = write!(
                    out,
                    " min={} p50={} p95={} p99={} max={} mean={:.1}",
                    h.min().unwrap_or(0),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.95).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max,
                    h.mean().unwrap_or(0.0),
                );
            }
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Human-readable dump of which buckets a histogram populated (debug aid).
pub fn render_buckets(h: &HistogramSnapshot) -> String {
    let mut out = String::new();
    for (i, &c) in h.buckets.iter().enumerate() {
        if c > 0 {
            let (lo, hi) = bucket_bounds(i);
            let _ = writeln!(out, "  [{lo:>20} ..= {hi:>20}]  {c}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::json::Json;
    use crate::metrics::Registry;
    use crate::trace::EventKind;

    fn sample() -> (BTreeMap<String, String>, Snapshot, Vec<Event>) {
        let reg = Registry::new();
        reg.counter("test.export.count").add(3);
        reg.gauge("test.export.level").set(-2);
        let h = reg.histogram("test.export.lat");
        for v in [10, 100, 1000, 10_000] {
            h.record(v);
        }
        let meta = BTreeMap::from([
            ("bench".to_string(), "demo \"quoted\"".to_string()),
            ("seed".to_string(), "42".to_string()),
        ]);
        let events = vec![Event {
            seq: 7,
            micros: 1234,
            kind: EventKind::Span,
            name: "phoenix.recovery.ping",
            dur_nanos: Some(1500),
            detail: "attempt 2\n".to_string(),
        }];
        (meta, reg.snapshot(), events)
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let (meta, snap, events) = sample();
        let doc = snapshot_json(&meta, &snap, &events);
        let v = Json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(v.get("obskit").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            v.get("meta")
                .and_then(|m| m.get("bench"))
                .and_then(Json::as_str),
            Some("demo \"quoted\"")
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("test.export.lat"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(hist.get("min").and_then(Json::as_f64), Some(10.0));
        let ev = v.get("events").and_then(Json::as_arr).expect("events");
        assert_eq!(ev.len(), 1);
        assert_eq!(
            ev[0].get("name").and_then(Json::as_str),
            Some("phoenix.recovery.ping")
        );
        assert_eq!(
            ev[0].get("detail").and_then(Json::as_str),
            Some("attempt 2\n")
        );
    }

    #[test]
    fn json_is_deterministic() {
        let (meta, snap, events) = sample();
        assert_eq!(
            snapshot_json(&meta, &snap, &events),
            snapshot_json(&meta, &snap, &events)
        );
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let doc = snapshot_json(&BTreeMap::new(), &Snapshot::default(), &[]);
        assert!(Json::parse(&doc).is_ok());
    }

    #[test]
    fn text_render_mentions_every_metric() {
        let (_, snap, _) = sample();
        let text = render_text(&snap);
        assert!(text.contains("test.export.count"));
        assert!(text.contains("test.export.level"));
        assert!(text.contains("test.export.lat"));
        assert!(text.contains("p95="));
        let hist = Histogram::new();
        hist.record(5);
        assert!(render_buckets(&hist.snapshot()).contains("..="));
    }
}
