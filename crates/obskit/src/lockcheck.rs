//! Runtime lock-order witness for `cargo xtask analyze`.
//!
//! The static analyzer infers a lock-order graph from source; this module
//! records what actually happens at runtime so the two can be compared.
//! Instrumented acquisition sites call [`held`] right after taking their
//! guard; while the witness token is alive its lock counts as held on the
//! current thread, and every acquisition taken under it records a
//! `(held, acquired)` edge into a global set. `cargo xtask ci` runs one
//! pinned chaos seed with the recorder enabled and fails if any observed
//! edge contradicts the static graph (or names a lock the analyzer has
//! never seen — static/dynamic drift).
//!
//! The discipline matches the crashpoint/trace gates: disabled by default,
//! and a disabled callsite costs exactly one relaxed atomic load. Node
//! names must match the analyzer's (`Struct::field`, e.g.
//! `"BufferPool::inner"`).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);

static EDGES: Mutex<BTreeSet<(&'static str, &'static str)>> = Mutex::new(BTreeSet::new());

thread_local! {
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Turn the recorder on (idempotent).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off. Held witnesses stay valid; their drops still
/// pop the per-thread stack so a later [`enable`] starts consistent.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Forget all recorded edges (tests).
pub fn clear() {
    EDGES.lock().clear();
}

/// RAII token marking a lock as held on this thread. Returned by [`held`];
/// drop order must mirror release order, so bind it right after the guard
/// (locals drop in reverse declaration order, releasing the witness first).
#[must_use]
pub struct Witness {
    name: Option<&'static str>,
}

/// Record that `name` is now held, noting an edge from every lock already
/// held by this thread. No-op (beyond one atomic load) while disabled.
pub fn held(name: &'static str) -> Witness {
    if !enabled() {
        return Witness { name: None };
    }
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if !h.is_empty() {
            let mut edges = EDGES.lock();
            for &prior in h.iter() {
                edges.insert((prior, name));
            }
        }
        h.push(name);
    });
    Witness { name: Some(name) }
}

impl Drop for Witness {
    fn drop(&mut self) {
        let Some(name) = self.name else {
            return;
        };
        // `try_with` guards against thread-teardown ordering: losing one
        // pop during exit is harmless, the thread's stack dies with it.
        let _ = HELD.try_with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&n| n == name) {
                h.remove(pos);
            }
        });
    }
}

/// All recorded `(from, to)` edges, sorted.
pub fn edges() -> Vec<(&'static str, &'static str)> {
    EDGES.lock().iter().copied().collect()
}

/// The witness as deterministic JSON:
/// `{"lockcheck":1,"edges":[{"from":"A::x","to":"B::y"},…]}`.
pub fn snapshot_json() -> String {
    let mut s = String::from("{\"lockcheck\":1,\"edges\":[");
    for (k, (from, to)) in edges().iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"from\":\"{from}\",\"to\":\"{to}\"}}"));
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that poke the global recorder.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = GATE.lock();
        disable();
        clear();
        let a = held("T::a");
        let b = held("T::b");
        drop(b);
        drop(a);
        assert!(edges().is_empty());
    }

    #[test]
    fn nested_holds_record_edges_in_order() {
        let _g = GATE.lock();
        enable();
        clear();
        {
            let _a = held("T::a");
            let _b = held("T::b");
            let _c = held("T::c");
        }
        disable();
        assert_eq!(
            edges(),
            vec![("T::a", "T::b"), ("T::a", "T::c"), ("T::b", "T::c")]
        );
    }

    #[test]
    fn sibling_holds_record_nothing() {
        let _g = GATE.lock();
        enable();
        clear();
        {
            let a = held("S::a");
            drop(a);
            let b = held("S::b");
            drop(b);
        }
        disable();
        assert!(edges().is_empty());
    }

    #[test]
    fn snapshot_json_round_trips_through_parser() {
        let _g = GATE.lock();
        enable();
        clear();
        {
            let _a = held("J::a");
            let _b = held("J::b");
        }
        disable();
        let doc = crate::json::Json::parse(&snapshot_json()).expect("valid json");
        assert_eq!(doc.get("lockcheck").and_then(|v| v.as_f64()), Some(1.0));
        let arr = doc.get("edges").and_then(|v| v.as_arr()).expect("edges");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("from").and_then(|v| v.as_str()), Some("J::a"));
        assert_eq!(arr[0].get("to").and_then(|v| v.as_str()), Some("J::b"));
    }
}
