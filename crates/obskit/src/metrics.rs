//! Always-on metrics: named counters, gauges and histograms.
//!
//! Unlike tracing, metrics are not gated — recording is a few relaxed
//! atomic operations, cheap enough for the wire round-trip path. A
//! [`Registry`] is a plain value: the process-wide [`global()`] registry
//! backs the benchmark exporters, while subsystems that need isolated
//! counts (each `PhoenixConnection`) own their own. Handles returned by
//! `counter`/`gauge`/`histogram` are `Arc`s, so hot paths resolve a name
//! once and then record lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::hist::{Histogram, HistogramSnapshot};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the level to at least `v` — a lock-free high-water mark,
    /// used for peak-concurrency gauges (`admission.pending.peak`).
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A namespace of metrics. Names follow the `layer.component.action`
/// callsite convention shared with crashpoints and trace events.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    Arc::clone(map.write().entry(name).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.hists, name)
    }

    /// Record a duration (as nanoseconds) into the histogram `name`.
    /// Convenience for cold paths; hot paths should hold the `Arc`.
    pub fn record(&self, name: &'static str, d: std::time::Duration) {
        self.histogram(name).record_duration(d);
    }

    /// Copy every metric into an owned, mergeable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: self
                .hists
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry (benchmark exporters snapshot this one).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Owned copy of a [`Registry`] at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Combine two snapshots: counters add, gauges take `other`'s value
    /// where both exist (last write wins), histograms merge.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.hists {
            let merged = match out.hists.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.hists.insert(k.clone(), merged);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("test.reg.c");
        let b = reg.counter("test.reg.c");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("test.reg.c").get(), 3);
        reg.gauge("test.reg.g").set(-5);
        assert_eq!(reg.gauge("test.reg.g").get(), -5);
        reg.gauge("test.reg.g").max(3);
        assert_eq!(reg.gauge("test.reg.g").get(), 3);
        reg.gauge("test.reg.g").max(1);
        assert_eq!(reg.gauge("test.reg.g").get(), 3, "max never lowers");
        reg.record("test.reg.h", std::time::Duration::from_nanos(100));
        assert_eq!(reg.histogram("test.reg.h").snapshot().count, 1);
    }

    #[test]
    fn snapshots_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(1);
        b.counter("c").add(2);
        b.counter("only_b").add(7);
        a.gauge("g").set(1);
        b.gauge("g").set(9);
        a.histogram("h").record(10);
        b.histogram("h").record(20);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counters.get("c"), Some(&3));
        assert_eq!(m.counters.get("only_b"), Some(&7));
        assert_eq!(m.gauges.get("g"), Some(&9));
        assert_eq!(m.hists.get("h").map(|h| h.count), Some(2));
    }
}
