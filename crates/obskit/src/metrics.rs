//! Always-on metrics: named counters, gauges and histograms.
//!
//! Unlike tracing, metrics are not gated — recording is a few relaxed
//! atomic operations, cheap enough for the wire round-trip path. A
//! [`Registry`] is a plain value: the process-wide [`global()`] registry
//! backs the benchmark exporters, while subsystems that need isolated
//! counts (each `PhoenixConnection`) own their own. Handles returned by
//! `counter`/`gauge`/`histogram` are `Arc`s, so hot paths resolve a name
//! once and then record lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::hist::{Histogram, HistogramSnapshot};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the level to at least `v` — a lock-free high-water mark,
    /// used for peak-concurrency gauges (`admission.pending.peak`).
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A namespace of metrics. Names follow the `layer.component.action`
/// callsite convention shared with crashpoints and trace events.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    Arc::clone(map.write().entry(name).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.hists, name)
    }

    /// Record a duration (as nanoseconds) into the histogram `name`.
    /// Convenience for cold paths; hot paths should hold the `Arc`.
    pub fn record(&self, name: &'static str, d: std::time::Duration) {
        self.histogram(name).record_duration(d);
    }

    /// Copy every metric into an owned, mergeable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: self
                .hists
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry (benchmark exporters snapshot this one).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Owned copy of a [`Registry`] at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Combine two snapshots: counters add, gauges take `other`'s value
    /// where both exist (last write wins), histograms merge.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.hists {
            let merged = match out.hists.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.hists.insert(k.clone(), merged);
        }
        out
    }

    /// The inverse of [`Self::merge`] for a growing registry:
    /// `earlier.diff(later)` is the activity between the two snapshots, so
    /// `earlier.merge(&earlier.diff(later))` reconstructs `later` exactly.
    /// Counters subtract saturating (never negative — a metric that shrank
    /// means a registry reset and clamps to zero); gauges are levels, not
    /// flows, so the delta carries `later`'s value verbatim (merge is
    /// last-write-wins); histograms take the bucket-wise
    /// [`HistogramSnapshot::diff`]. Metrics present only in `self` are
    /// dropped — a live registry never loses a name, so they too indicate
    /// a reset.
    pub fn diff(&self, later: &Snapshot) -> Snapshot {
        Snapshot {
            counters: later
                .counters
                .iter()
                .map(|(k, v)| {
                    let base = self.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(base))
                })
                .collect(),
            gauges: later.gauges.clone(),
            hists: later
                .hists
                .iter()
                .map(|(k, v)| match self.hists.get(k) {
                    Some(mine) => (k.clone(), mine.diff(v)),
                    None => (k.clone(), v.clone()),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("test.reg.c");
        let b = reg.counter("test.reg.c");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("test.reg.c").get(), 3);
        reg.gauge("test.reg.g").set(-5);
        assert_eq!(reg.gauge("test.reg.g").get(), -5);
        reg.gauge("test.reg.g").max(3);
        assert_eq!(reg.gauge("test.reg.g").get(), 3);
        reg.gauge("test.reg.g").max(1);
        assert_eq!(reg.gauge("test.reg.g").get(), 3, "max never lowers");
        reg.record("test.reg.h", std::time::Duration::from_nanos(100));
        assert_eq!(reg.histogram("test.reg.h").snapshot().count, 1);
    }

    #[test]
    fn snapshots_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(1);
        b.counter("c").add(2);
        b.counter("only_b").add(7);
        a.gauge("g").set(1);
        b.gauge("g").set(9);
        a.histogram("h").record(10);
        b.histogram("h").record(20);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counters.get("c"), Some(&3));
        assert_eq!(m.counters.get("only_b"), Some(&7));
        assert_eq!(m.gauges.get("g"), Some(&9));
        assert_eq!(m.hists.get("h").map(|h| h.count), Some(2));
    }

    #[test]
    fn diff_is_the_between_snapshot_activity() {
        let reg = Registry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(3);
        reg.histogram("h").record(100);
        let before = reg.snapshot();
        reg.counter("c").add(2);
        reg.counter("fresh").incr();
        reg.gauge("g").set(-1);
        reg.histogram("h").record(7);
        let after = reg.snapshot();
        let d = before.diff(&after);
        assert_eq!(d.counters.get("c"), Some(&2));
        assert_eq!(d.counters.get("fresh"), Some(&1));
        assert_eq!(d.gauges.get("g"), Some(&-1), "gauges carry the level");
        let dh = d.hists.get("h").expect("h delta");
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 7);
        assert_eq!(before.merge(&d), after, "merge(diff) round-trips");
        // Idle window: the diff is empty activity and merging it back is
        // the identity.
        let idle = after.diff(&after);
        assert!(idle.counters.values().all(|&v| v == 0));
        assert!(idle.hists.values().all(|h| h.count == 0));
        assert_eq!(after.merge(&idle), after);
    }

    #[test]
    fn diff_clamps_registry_resets_to_zero() {
        // A counter that went *down* can only mean the registry restarted;
        // the delta clamps to zero instead of wrapping to ~u64::MAX.
        let big = Registry::new();
        big.counter("c").add(10);
        let small = Registry::new();
        small.counter("c").add(4);
        let d = big.snapshot().diff(&small.snapshot());
        assert_eq!(d.counters.get("c"), Some(&0));
    }

    mod diff_props {
        use super::*;
        use proptest::prelude::*;

        /// Random registry mutations: counter adds, gauge sets, and
        /// histogram records, each keyed by a small name index.
        type Activity = (Vec<(u8, u64)>, Vec<(u8, i64)>, Vec<(u8, u64)>);

        fn arb_activity() -> impl Strategy<Value = Activity> {
            (
                prop::collection::vec((0u8..6, 0u64..1000), 0..12),
                prop::collection::vec((0u8..4, -50i64..50), 0..8),
                prop::collection::vec((0u8..4, 0u64..1_000_000), 0..20),
            )
        }

        const COUNTER_NAMES: [&str; 6] = ["c0", "c1", "c2", "c3", "c4", "c5"];
        const GAUGE_NAMES: [&str; 4] = ["g0", "g1", "g2", "g3"];
        const HIST_NAMES: [&str; 4] = ["h0", "h1", "h2", "h3"];

        fn apply(reg: &Registry, act: &Activity) {
            for &(i, n) in &act.0 {
                reg.counter(COUNTER_NAMES[i as usize % 6]).add(n);
            }
            for &(i, v) in &act.1 {
                reg.gauge(GAUGE_NAMES[i as usize % 4]).set(v);
            }
            for &(i, v) in &act.2 {
                reg.histogram(HIST_NAMES[i as usize % 4]).record(v);
            }
        }

        proptest! {
            #[test]
            fn merge_of_diff_reconstructs_the_later_snapshot(
                first in arb_activity(),
                second in arb_activity(),
            ) {
                // One registry, two snapshots with activity in between —
                // the only shape a live process produces.
                let reg = Registry::new();
                apply(&reg, &first);
                let a = reg.snapshot();
                apply(&reg, &second);
                let b = reg.snapshot();
                let d = a.diff(&b);
                // Monotone-counter deltas are never "negative": every
                // delta fits under the later value.
                for (k, v) in &d.counters {
                    prop_assert!(*v <= *b.counters.get(k).unwrap_or(&0));
                }
                for (k, h) in &d.hists {
                    let later = b.hists.get(k).expect("later superset");
                    prop_assert!(h.count <= later.count);
                    for i in 0..crate::hist::BUCKETS {
                        prop_assert!(h.buckets[i] <= later.buckets[i]);
                    }
                }
                prop_assert_eq!(a.merge(&d), b);
            }
        }
    }
}
