//! obskit: the measurement layer of the Phoenix stack.
//!
//! The source paper is *Measuring* and Optimizing a System for Persistent
//! Database Sessions; this crate is where the measuring happens. It has
//! two halves with different cost models:
//!
//! * **Tracing** ([`trace`]): `span!`/`event!` callsites append structured
//!   events to a lock-sharded in-process ring buffer. Tracing follows the
//!   `faultkit::crashpoint!` discipline — disabled by default, and a
//!   disabled callsite costs exactly one relaxed atomic load (the slow
//!   path, including any `format!` of the detail string, is never
//!   reached). Enable with a [`trace::TraceSession`] guard.
//! * **Metrics** ([`metrics`]): named counters, gauges and fixed
//!   log2-bucket [`hist::Histogram`]s in a [`metrics::Registry`]. These
//!   are always on: recording is a handful of relaxed atomic adds, cheap
//!   enough to live on the wire round-trip path. Registries are plain
//!   values (one per [`metrics::global()`] process, or per connection),
//!   and their [`metrics::Snapshot`]s merge.
//!
//! Callsites are named `layer.component.action` (the same convention as
//! crashpoint names, so a trace timeline and a `FAULTKIT_REPLAY` line
//! speak about the same places). Exporters ([`export`]) render snapshots
//! as aligned text or deterministic JSON; [`json`] is a minimal parser
//! used by tests and `cargo xtask ci` to validate emitted snapshots.

pub mod export;
pub mod hist;
pub mod json;
pub mod lockcheck;
pub mod metrics;
pub mod stream;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{global, Counter, Gauge, Registry, Snapshot};
pub use trace::{Event, EventKind, SpanGuard, TraceSession};

/// Record an instantaneous trace event. Free (one relaxed load) unless a
/// [`trace::TraceSession`] is active; the detail `format!` only runs when
/// tracing is enabled.
///
/// ```
/// obskit::event!("wire.fault.drop");
/// obskit::event!("wire.fault.delay", "msg {} of pipe {}", 3, 1);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_instant($name, String::new());
        }
    };
    ($name:expr, $($arg:tt)+) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_instant($name, format!($($arg)+));
        }
    };
}

/// Open a trace span: returns a guard that records one `span` event with
/// the elapsed duration when dropped. Inert (no clock read, no event)
/// while tracing is disabled.
///
/// ```
/// let _g = obskit::span!("phoenix.recovery.ping");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use crate::trace;

    #[test]
    fn macros_are_inert_when_disabled() {
        // Must not panic, must not record, must not evaluate the format
        // arguments' side effects lazily wrong — the detail closure simply
        // never runs.
        let _x = trace::exclusive();
        let before = trace::snapshot().len();
        event!("test.macro.instant");
        event!("test.macro.fmt", "{}", {
            // Side effect would show up as a recorded event if the gate
            // leaked; the block itself still runs only when enabled.
            42
        });
        let _g = span!("test.macro.span");
        drop(_g);
        assert_eq!(trace::snapshot().len(), before);
    }

    #[test]
    fn macros_record_when_enabled() {
        let _s = trace::session();
        trace::clear();
        event!("test.macro.one");
        {
            let _g = span!("test.macro.timed");
        }
        let evs = trace::snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "test.macro.one");
        assert_eq!(evs[1].name, "test.macro.timed");
        assert!(evs[1].dur_nanos.is_some());
    }
}
