//! Minimal JSON value + recursive-descent parser.
//!
//! Exists so tests and `cargo xtask ci` can validate the snapshots the
//! [`crate::export`] module emits without an external dependency. Covers
//! standard JSON (objects, arrays, strings with escapes, numbers, bools,
//! null); numbers are held as `f64`, which is exact for every integer the
//! exporters write below 2^53 and merely approximate above — fine for
//! validation.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    if let Some(c) = s.chars().next() {
                        if c.is_control() {
                            return Err("raw control character in string".into());
                        }
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\n\"y\"", "t": true, "n": null}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(Json::as_arr)
                .and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("s")).and_then(Json::as_str),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("n")), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_resolve() {
        let escaped = "\"\\u0041\\u00e9 é\"";
        let v = Json::parse(escaped).unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
