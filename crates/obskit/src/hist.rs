//! Fixed log2-bucket histograms.
//!
//! Values (typically durations in nanoseconds) are binned by bit length:
//! bucket 0 holds the value 0 and bucket `i` holds `2^(i-1) ..= 2^i - 1`
//! (the last bucket absorbs everything above). 64 buckets therefore cover
//! the whole `u64` range with a worst-case 2× relative error on quantile
//! estimates — ample for the order-of-magnitude phase breakdowns the
//! paper reports, and recordable with a handful of relaxed atomic adds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, else its bit length (clamped).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive value range `(lo, hi)` a bucket covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// Lock-free recording side: every field is a relaxed atomic, so a
/// `record` costs four adds and two compare-updates with no ordering
/// constraints. Snapshots are not atomic across fields (a concurrent
/// recorder may land between reads); merged totals stay self-consistent
/// to within in-flight records, which is all metrics need.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copy the current contents (see the struct docs for the relaxed
    /// cross-field consistency caveat).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Owned, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (wrapping add on overflow).
    pub sum: u64,
    /// Smallest observation (`u64::MAX` while empty — see [`Self::min`]).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Smallest observation, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Mean observation, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Combine two snapshots: the result is exactly the histogram that
    /// would have recorded both observation streams.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }

    /// The inverse of [`Self::merge`] for a *growing* observation stream:
    /// `earlier.diff(later)` returns the histogram of exactly the
    /// observations recorded between the two snapshots, so
    /// `earlier.merge(&earlier.diff(later)) == *later` whenever `later`
    /// extends `earlier`. Counts and buckets subtract saturating (a
    /// shrunken field — possible only across a registry reset — clamps to
    /// zero rather than wrapping); `min`/`max` adopt `later`'s bounds when
    /// the delta is non-empty, and stay at their empty-histogram
    /// identities otherwise so merging them back is a no-op.
    pub fn diff(&self, later: &HistogramSnapshot) -> HistogramSnapshot {
        let count = later.count.saturating_sub(self.count);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count,
            sum: later.sum.wrapping_sub(self.sum),
            min: later.min,
            max: later.max,
            buckets: std::array::from_fn(|i| later.buckets[i].saturating_sub(self.buckets[i])),
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank-`⌈q·count⌉` observation, clamped to the
    /// observed max — so the estimate always lands in the same log2
    /// bucket as the true order statistic (≤ 2× relative error).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return Some(hi.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_bounds_agree() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} bounds=({lo},{hi})");
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn basic_record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.50).unwrap_or(0);
        let p99 = s.quantile(0.99).unwrap_or(0);
        // True p50 = 500 (bucket up to 511), true p99 = 990 (clamped to
        // the observed max 1000).
        assert_eq!(p50, 511);
        assert_eq!(p99, 1000);
        assert!(p50 <= p99);
    }

    fn exact_rank_value(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn buckets_partition_the_record_stream(values in prop::collection::vec(any::<u64>(), 0..200)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            // Bucket counts sum to the total count, and the cumulative
            // bucket curve is monotone non-decreasing by construction.
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), values.len() as u64);
            let mut cum = 0u64;
            for &b in &s.buckets {
                let next = cum + b;
                prop_assert!(next >= cum);
                cum = next;
            }
            prop_assert_eq!(cum, s.count);
        }

        #[test]
        fn merge_equals_concatenated_record(
            a in prop::collection::vec(any::<u64>(), 0..100),
            b in prop::collection::vec(any::<u64>(), 0..100),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hboth = Histogram::new();
            for &v in &a {
                ha.record(v);
                hboth.record(v);
            }
            for &v in &b {
                hb.record(v);
                hboth.record(v);
            }
            prop_assert_eq!(ha.snapshot().merge(&hb.snapshot()), hboth.snapshot());
        }

        #[test]
        fn diff_inverts_merge_for_growing_streams(
            early in prop::collection::vec(any::<u64>(), 0..100),
            late in prop::collection::vec(any::<u64>(), 0..100),
        ) {
            // `later` is `earlier` plus the `late` observations — the only
            // shape a live registry can produce between two snapshots.
            let h_early = Histogram::new();
            let h_later = Histogram::new();
            for &v in &early {
                h_early.record(v);
                h_later.record(v);
            }
            for &v in &late {
                h_later.record(v);
            }
            let a = h_early.snapshot();
            let b = h_later.snapshot();
            let d = a.diff(&b);
            // The delta is never negative anywhere: counts, sum and every
            // bucket are the late stream's alone.
            prop_assert_eq!(d.count, late.len() as u64);
            prop_assert_eq!(d.buckets.iter().sum::<u64>(), late.len() as u64);
            for (i, &c) in d.buckets.iter().enumerate() {
                prop_assert!(c <= b.buckets[i]);
            }
            // Round trip: merging the delta back onto the earlier snapshot
            // reconstructs the later one exactly.
            prop_assert_eq!(a.merge(&d), b);
            // Self-diff is the empty histogram (merge identity).
            prop_assert_eq!(a.diff(&a.clone()), HistogramSnapshot::default());
            prop_assert_eq!(a.merge(&a.diff(&a.clone())), a);
        }

        #[test]
        fn quantile_estimate_shares_bucket_with_true_order_statistic(
            values in prop::collection::vec(1u64..1_000_000_000, 1..200),
            qi in 0u32..=100,
        ) {
            let q = qi as f64 / 100.0;
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let truth = exact_rank_value(&sorted, q);
            let est = h.snapshot().quantile(q).unwrap_or(0);
            // The estimate is the bucket upper bound clamped to [min, max],
            // so it never leaves the true order statistic's bucket and
            // never understates it by more than the clamp.
            prop_assert_eq!(
                bucket_index(est), bucket_index(truth),
                "est {} truth {} q {}", est, truth, q
            );
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            prop_assert!(lo <= est && est <= hi);
        }
    }
}
