//! Gated structured tracing over a lock-sharded ring buffer.
//!
//! The gate follows `faultkit::crashpoint!`: a single process-wide
//! `AtomicBool` loaded with `Relaxed` ordering at every callsite. While
//! no [`TraceSession`] is active the macros compile down to that one
//! load — no clock read, no formatting, no locking. When enabled, events
//! go to a fixed-capacity ring buffer sharded across several mutexes
//! (writers on different shards never contend); each event carries a
//! global sequence number so a merged timeline has a total causal order
//! even across shards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard};

/// Number of ring shards; writers hash by sequence number, so bursts
/// spread round-robin across shards.
const SHARDS: usize = 8;
/// Events retained per shard (total capacity = `SHARDS * SHARD_CAP`).
const SHARD_CAP: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Is tracing currently enabled? The only cost a disabled callsite pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The instant all event timestamps are relative to (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Serializes tests that depend on the global enabled/disabled state.
#[doc(hidden)]
pub fn exclusive() -> MutexGuard<'static, ()> {
    session_lock().lock()
}

/// RAII guard enabling tracing for its lifetime. Sessions serialize on a
/// process-wide lock (like faultkit sessions) so concurrent tests cannot
/// observe each other's gate flips; the prior state is restored on drop.
pub struct TraceSession {
    _lock: MutexGuard<'static, ()>,
    prev: bool,
}

/// Enable tracing until the returned guard is dropped.
pub fn session() -> TraceSession {
    let lock = session_lock().lock();
    let prev = ENABLED.swap(true, Ordering::SeqCst);
    TraceSession { _lock: lock, prev }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(self.prev, Ordering::SeqCst);
    }
}

/// What a recorded event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point in time (`event!`).
    Instant,
    /// A completed timed region (`span!` guard drop); `dur_nanos` is set.
    Span,
}

impl EventKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Instant => "instant",
            EventKind::Span => "span",
        }
    }
}

/// One timeline entry.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number: the total causal order across shards.
    pub seq: u64,
    /// Microseconds since the process trace epoch.
    pub micros: u64,
    /// Event kind (instant or span).
    pub kind: EventKind,
    /// Callsite name, `layer.component.action`.
    pub name: &'static str,
    /// Span duration in nanoseconds (spans only).
    pub dur_nanos: Option<u64>,
    /// Free-form detail (empty unless the callsite formatted one).
    pub detail: String,
}

/// One shard: a circular array indexed by `(seq / SHARDS) % SHARD_CAP`,
/// so each shard holds the most recent `SHARD_CAP` of its events and the
/// merged view keeps the most recent `SHARDS * SHARD_CAP` overall.
struct Shard {
    slots: Mutex<Vec<Option<Event>>>,
}

fn shards() -> &'static [Shard; SHARDS] {
    static RING: OnceLock<[Shard; SHARDS]> = OnceLock::new();
    RING.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            slots: Mutex::new(vec![None; SHARD_CAP]),
        })
    })
}

#[cold]
fn push(kind: EventKind, name: &'static str, dur_nanos: Option<u64>, detail: String) {
    let micros = epoch().elapsed().as_micros() as u64;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let shard = &shards()[(seq as usize) % SHARDS];
    let slot = ((seq as usize) / SHARDS) % SHARD_CAP;
    let ev = Event {
        seq,
        micros,
        kind,
        name,
        dur_nanos,
        detail,
    };
    let mut slots = shard.slots.lock();
    if let Some(s) = slots.get_mut(slot) {
        *s = Some(ev);
    }
}

/// Record an instantaneous event (no-op while disabled). Prefer the
/// [`event!`](crate::event!) macro, which also gates the detail `format!`.
#[cold]
pub fn emit_instant(name: &'static str, detail: String) {
    if enabled() {
        push(EventKind::Instant, name, None, detail);
    }
}

/// Record a completed span of `dur` (no-op while disabled). Used directly
/// by code that already measures durations for its own purposes and wants
/// the measurement on the timeline too.
#[cold]
pub fn emit_span(name: &'static str, dur: Duration, detail: String) {
    if enabled() {
        push(EventKind::Span, name, Some(dur.as_nanos() as u64), detail);
    }
}

/// Guard returned by [`span!`](crate::span!): records one span event with
/// the elapsed time on drop. Inert when tracing was disabled at entry.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Open a span (reads the clock only if tracing is enabled).
    pub fn enter(name: &'static str) -> SpanGuard {
        let start = enabled().then(Instant::now);
        SpanGuard { name, start }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            emit_span(self.name, start.elapsed(), String::new());
        }
    }
}

/// All retained events, oldest first (total order by sequence number).
pub fn snapshot() -> Vec<Event> {
    let mut out = Vec::new();
    for shard in shards() {
        let slots = shard.slots.lock();
        out.extend(slots.iter().filter_map(|s| s.as_ref().cloned()));
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Total number of events ever emitted (retained or overwritten).
pub fn emitted() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// Discard all retained events (the sequence counter keeps running).
pub fn clear() {
    for shard in shards() {
        let mut slots = shard.slots.lock();
        for s in slots.iter_mut() {
            *s = None;
        }
    }
}

/// Render the last `n` retained events as an indented human-readable
/// timeline — the block chaos-soak failures print next to their
/// `FAULTKIT_REPLAY` line.
pub fn dump_last(n: usize) -> String {
    use std::fmt::Write as _;
    let events = snapshot();
    let skipped = events.len().saturating_sub(n);
    let mut out = String::new();
    if skipped > 0 {
        let _ = writeln!(out, "  … {skipped} earlier events elided …");
    }
    for ev in events.iter().skip(skipped) {
        let _ = write!(
            out,
            "  [{:>6}] +{:>12.3}ms {:<7} {}",
            ev.seq,
            ev.micros as f64 / 1_000.0,
            ev.kind.name(),
            ev.name
        );
        if let Some(d) = ev.dur_nanos {
            let _ = write!(out, "  ({:.3}ms)", d as f64 / 1_000_000.0);
        }
        if !ev.detail.is_empty() {
            let _ = write!(out, "  {}", ev.detail);
        }
        out.push('\n');
    }
    if events.is_empty() {
        out.push_str("  (no events retained — was a TraceSession active?)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_restores_prior_state() {
        let outer = session();
        assert!(enabled());
        drop(outer);
        let _x = exclusive();
        assert!(!enabled());
    }

    #[test]
    fn events_are_ordered_and_capped() {
        let _s = session();
        clear();
        let total = SHARDS * SHARD_CAP + 100;
        for _ in 0..total {
            emit_instant("test.ring.fill", String::new());
        }
        let evs = snapshot();
        // Wraparound: exactly the capacity is retained, and it is the
        // most recent slice in strict sequence order.
        assert_eq!(evs.len(), SHARDS * SHARD_CAP);
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].micros >= w[0].micros);
        }
        let newest = evs.last().map(|e| e.seq).unwrap_or(0);
        let oldest = evs.first().map(|e| e.seq).unwrap_or(0);
        assert_eq!(newest - oldest + 1, (SHARDS * SHARD_CAP) as u64);
    }

    #[test]
    fn dump_elides_older_events() {
        let _s = session();
        clear();
        for i in 0..10 {
            emit_instant("test.dump.ev", format!("i={i}"));
        }
        let dump = dump_last(3);
        assert!(dump.contains("7 earlier events elided"));
        assert!(dump.contains("i=9"));
        assert!(!dump.contains("i=2"));
    }
}
